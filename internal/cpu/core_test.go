package cpu

import (
	"fmt"
	"testing"

	"occamy/internal/coproc"
	"occamy/internal/isa"
	"occamy/internal/mem"
	"occamy/internal/roofline"
	"occamy/internal/sim"
)

// rig wires a single scalar core to a co-processor and memory.
type rig struct {
	core  *Core
	cp    *coproc.Coproc
	data  *mem.Memory
	eng   *sim.Engine
	stats *sim.Stats
}

func newRig(t *testing.T, prog *isa.Program) *rig {
	t.Helper()
	eng := sim.NewEngine()
	stats := eng.Stats()
	h := mem.NewHierarchy(mem.DefaultHierarchyConfig(1), stats)
	ccfg := coproc.DefaultConfig(1)
	ccfg.ExeBUs = 8
	cp := coproc.New(ccfg, h.VecCache, h.Mem, roofline.Default(), stats)
	core := New(0, DefaultConfig(), prog, cp, h.L1D[0], h.Mem, stats)
	cp.SetResponder(core.HandleResult)
	eng.Register(core)
	eng.Register(cp)
	return &rig{core: core, cp: cp, data: h.Mem, eng: eng, stats: stats}
}

func (r *rig) run(t *testing.T, maxCycles uint64) {
	t.Helper()
	done := func() bool { return r.core.Halted() && r.cp.Quiescent(0, r.eng.Cycle()) }
	if _, err := r.eng.RunUntil(done, maxCycles); err != nil {
		t.Fatalf("run: %v (pc=%d)", err, r.core.PC())
	}
}

func asm(t *testing.T, build func(b *isa.Builder)) *isa.Program {
	t.Helper()
	b := isa.NewBuilder("test")
	build(b)
	b.Emit(isa.Inst{Op: isa.OpHalt})
	p, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestScalarALULoop(t *testing.T) {
	// Sum 1..10 into X1.
	p := asm(t, func(b *isa.Builder) {
		b.Emit(isa.Inst{Op: isa.OpMovI, Dst: 0, Imm: 0})  // i
		b.Emit(isa.Inst{Op: isa.OpMovI, Dst: 1, Imm: 0})  // sum
		b.Emit(isa.Inst{Op: isa.OpMovI, Dst: 2, Imm: 10}) // limit
		b.Label("loop")
		b.Emit(isa.Inst{Op: isa.OpAddI, Dst: 0, Src1: 0, Imm: 1})
		b.Emit(isa.Inst{Op: isa.OpAdd, Dst: 1, Src1: 1, Src2: 0})
		b.Branch(isa.Inst{Op: isa.OpBLT, Src1: 0, Src2: 2}, "loop")
	})
	r := newRig(t, p)
	r.run(t, 10000)
	if got := r.core.X(1); got != 55 {
		t.Fatalf("sum = %d, want 55", got)
	}
}

func TestScalarArithAndXZR(t *testing.T) {
	p := asm(t, func(b *isa.Builder) {
		b.Emit(isa.Inst{Op: isa.OpMovI, Dst: 1, Imm: 6})
		b.Emit(isa.Inst{Op: isa.OpMulI, Dst: 2, Src1: 1, Imm: 7})
		b.Emit(isa.Inst{Op: isa.OpSubI, Dst: 3, Src1: 2, Imm: 2})
		b.Emit(isa.Inst{Op: isa.OpSub, Dst: 4, Src1: 3, Src2: 1})
		b.Emit(isa.Inst{Op: isa.OpAdd, Dst: 5, Src1: isa.XZR, Src2: 1})
		b.Emit(isa.Inst{Op: isa.OpMovI, Dst: isa.XZR, Imm: 99}) // discarded
		b.Emit(isa.Inst{Op: isa.OpMov, Dst: 6, Src1: isa.XZR})
	})
	r := newRig(t, p)
	r.run(t, 1000)
	if r.core.X(2) != 42 || r.core.X(3) != 40 || r.core.X(4) != 34 {
		t.Fatalf("arith: X2=%d X3=%d X4=%d", r.core.X(2), r.core.X(3), r.core.X(4))
	}
	if r.core.X(5) != 6 || r.core.X(6) != 0 {
		t.Fatalf("XZR semantics: X5=%d X6=%d", r.core.X(5), r.core.X(6))
	}
}

func TestBranchVariants(t *testing.T) {
	p := asm(t, func(b *isa.Builder) {
		b.Emit(isa.Inst{Op: isa.OpMovI, Dst: 1, Imm: 5})
		b.Emit(isa.Inst{Op: isa.OpMovI, Dst: 2, Imm: 5})
		b.Emit(isa.Inst{Op: isa.OpMovI, Dst: 10, Imm: 0})
		b.Branch(isa.Inst{Op: isa.OpBEQ, Src1: 1, Src2: 2}, "eq")
		b.Emit(isa.Inst{Op: isa.OpMovI, Dst: 10, Imm: 111}) // must be skipped
		b.Label("eq")
		b.Branch(isa.Inst{Op: isa.OpBNE, Src1: 1, Src2: 2}, "bad")
		b.Branch(isa.Inst{Op: isa.OpBGE, Src1: 1, Src2: 2}, "ge")
		b.Label("bad")
		b.Emit(isa.Inst{Op: isa.OpMovI, Dst: 10, Imm: 222})
		b.Label("ge")
		b.Branch(isa.Inst{Op: isa.OpBEQI, Src1: 1, Imm: 5}, "eqi")
		b.Emit(isa.Inst{Op: isa.OpMovI, Dst: 10, Imm: 333})
		b.Label("eqi")
		b.Branch(isa.Inst{Op: isa.OpBNEI, Src1: 1, Imm: 5}, "bad2")
		b.Branch(isa.Inst{Op: isa.OpB}, "end")
		b.Label("bad2")
		b.Emit(isa.Inst{Op: isa.OpMovI, Dst: 10, Imm: 444})
		b.Label("end")
	})
	r := newRig(t, p)
	r.run(t, 1000)
	if r.core.X(10) != 0 {
		t.Fatalf("branching took a wrong path: X10=%d", r.core.X(10))
	}
}

func TestScalarFPAndMemory(t *testing.T) {
	p := asm(t, func(b *isa.Builder) {
		b.Emit(isa.Inst{Op: isa.OpMovI, Dst: 1, Imm: 4096})
		b.Emit(isa.Inst{Op: isa.OpSLoadF, Dst: 1, Src1: 1})          // F1 = mem[4096] = 2.5
		b.Emit(isa.Inst{Op: isa.OpSFMovI, Dst: 2, FImm: 4})          // F2 = 4
		b.Emit(isa.Inst{Op: isa.OpSFMul, Dst: 3, Src1: 1, Src2: 2})  // 10
		b.Emit(isa.Inst{Op: isa.OpSFAdd, Dst: 4, Src1: 3, Src2: 1})  // 12.5
		b.Emit(isa.Inst{Op: isa.OpSFSub, Dst: 5, Src1: 4, Src2: 2})  // 8.5
		b.Emit(isa.Inst{Op: isa.OpSFDiv, Dst: 6, Src1: 3, Src2: 2})  // 2.5
		b.Emit(isa.Inst{Op: isa.OpSFMla, Dst: 6, Src1: 2, Src2: 2})  // 2.5+16=18.5
		b.Emit(isa.Inst{Op: isa.OpSFNeg, Dst: 7, Src1: 6})           // -18.5
		b.Emit(isa.Inst{Op: isa.OpSFAbs, Dst: 8, Src1: 7})           // 18.5
		b.Emit(isa.Inst{Op: isa.OpSFMax, Dst: 9, Src1: 7, Src2: 8})  // 18.5
		b.Emit(isa.Inst{Op: isa.OpSFMin, Dst: 10, Src1: 7, Src2: 8}) // -18.5
		b.Emit(isa.Inst{Op: isa.OpSFMovI, Dst: 11, FImm: 9})         //
		b.Emit(isa.Inst{Op: isa.OpSFSqrt, Dst: 11, Src1: 11})        // 3
		b.Emit(isa.Inst{Op: isa.OpMovI, Dst: 2, Imm: 8192})          //
		b.Emit(isa.Inst{Op: isa.OpSStoreF, Dst: 4, Src1: 2})         // mem[8192] = 12.5
	})
	r := newRig(t, p)
	r.data.WriteF32(4096, 2.5)
	r.run(t, 10000)
	checks := map[isa.Reg]float32{3: 10, 4: 12.5, 5: 8.5, 6: 18.5, 7: -18.5, 8: 18.5, 9: 18.5, 10: -18.5, 11: 3}
	for reg, want := range checks {
		if got := r.core.F(reg); got != want {
			t.Errorf("F%d = %v, want %v", reg, got, want)
		}
	}
	if got := r.data.ReadF32(8192); got != 12.5 {
		t.Errorf("stored value = %v, want 12.5", got)
	}
}

var setVLSeq int

// emitSetVL emits the full Figure 9 protocol to configure a vector length:
// write <VL>, then spin on <status> so no later instruction runs under a
// stale length. Skipping the spin is a §6.4 violation — and the poison
// machinery turns it into NaNs, as a dedicated test verifies.
func emitSetVL(b *isa.Builder, vl int64) {
	setVLSeq++
	lbl := fmt.Sprintf("setvl%d", setVLSeq)
	b.Label(lbl)
	b.Emit(isa.Inst{Op: isa.OpMSR, Sys: isa.SysVL, Src1: isa.RegNone, Imm: vl})
	b.Emit(isa.Inst{Op: isa.OpMRS, Dst: 3, Sys: isa.SysStatus})
	if vl <= 8 { // feasible requests spin to success; infeasible ones fall through
		b.Branch(isa.Inst{Op: isa.OpBNEI, Src1: 3, Imm: 1}, lbl)
	}
}

func TestRdElemsAndIncVLTrackConfiguredLength(t *testing.T) {
	p := asm(t, func(b *isa.Builder) {
		emitSetVL(b, 3)
		b.Emit(isa.Inst{Op: isa.OpRdElems, Dst: 5})
		b.Emit(isa.Inst{Op: isa.OpMovI, Dst: 6, Imm: 1000})
		b.Emit(isa.Inst{Op: isa.OpIncVL, Dst: 6, Src1: 6, Imm: 4})
	})
	r := newRig(t, p)
	r.run(t, 1000)
	if r.core.X(5) != 12 {
		t.Fatalf("RDELEMS = %d, want 12 (3 granules)", r.core.X(5))
	}
	if r.core.X(6) != 1000+4*12 {
		t.Fatalf("INCVL = %d, want %d", r.core.X(6), 1000+4*12)
	}
}

func TestMRSStatusOrdersAfterMSRVL(t *testing.T) {
	// The status read must reflect THIS VL write, not a stale value:
	// request an infeasible length (9 > 8 ExeBUs) and expect status 0.
	p := asm(t, func(b *isa.Builder) {
		emitSetVL(b, 9)
		b.Emit(isa.Inst{Op: isa.OpMov, Dst: 4, Src1: 3})
		emitSetVL(b, 2)
		b.Emit(isa.Inst{Op: isa.OpMov, Dst: 5, Src1: 3})
	})
	r := newRig(t, p)
	r.run(t, 1000)
	if r.core.X(4) != 0 {
		t.Fatalf("status after infeasible request = %d, want 0", r.core.X(4))
	}
	if r.core.X(5) != 1 {
		t.Fatalf("status after feasible request = %d, want 1", r.core.X(5))
	}
}

func TestSpeculativeDecisionRead(t *testing.T) {
	// MRS <decision> resolves combinationally even with SVE backlog.
	p := asm(t, func(b *isa.Builder) {
		b.Emit(isa.Inst{Op: isa.OpMovI, Dst: 1, Imm: int64(isa.PackOI(isa.OIPair{Issue: 1, Mem: 1}))})
		b.Emit(isa.Inst{Op: isa.OpMSR, Sys: isa.SysOI, Src1: 1})
		emitSetVL(b, 1)
		// Backlog of dependent vector work.
		b.Emit(isa.Inst{Op: isa.OpVDupI, Dst: 1, FImm: 1})
		for i := 0; i < 10; i++ {
			b.Emit(isa.Inst{Op: isa.OpVFAdd, Dst: 1, Src1: 1, Src2: 1})
		}
		b.Emit(isa.Inst{Op: isa.OpMRS, Dst: 4, Sys: isa.SysDecision})
	})
	r := newRig(t, p)
	r.run(t, 10000)
	if r.core.X(4) != 8 {
		t.Fatalf("decision = %d, want 8 (lone compute workload)", r.core.X(4))
	}
}

func TestVWhileSetsTailPredicate(t *testing.T) {
	// trip=10, idx=8, VL=2 granules (8 elems): active must be 2, and a
	// store after VWHILE must write only 2 elements.
	p := asm(t, func(b *isa.Builder) {
		emitSetVL(b, 2)
		b.Emit(isa.Inst{Op: isa.OpVDupI, Dst: 1, FImm: 5})
		b.Emit(isa.Inst{Op: isa.OpMovI, Dst: 25, Imm: 10})
		b.Emit(isa.Inst{Op: isa.OpMovI, Dst: 0, Imm: 8})
		b.Emit(isa.Inst{Op: isa.OpVWhile, Dst: 7, Src1: 25, Src2: 0})
		b.Emit(isa.Inst{Op: isa.OpMovI, Dst: 8, Imm: 4096})
		b.Emit(isa.Inst{Op: isa.OpVStore, Dst: 1, Src1: 8, Src2: isa.XZR})
		// Reset and store full width elsewhere.
		b.Emit(isa.Inst{Op: isa.OpVWhile, Dst: isa.RegNone, Imm: 1})
		b.Emit(isa.Inst{Op: isa.OpMovI, Dst: 9, Imm: 8192})
		b.Emit(isa.Inst{Op: isa.OpVStore, Dst: 1, Src1: 9, Src2: isa.XZR})
	})
	r := newRig(t, p)
	r.run(t, 10000)
	if r.core.X(7) != 2 {
		t.Fatalf("VWHILE result = %d, want 2", r.core.X(7))
	}
	if r.data.ReadF32(4096) != 5 || r.data.ReadF32(4096+4) != 5 {
		t.Fatal("predicated store wrote too little")
	}
	if r.data.ReadF32(4096+8) != 0 {
		t.Fatal("predicated store wrote beyond the tail")
	}
	if r.data.ReadF32(8192+28) != 5 {
		t.Fatal("reset predicate store must write all 8 elements")
	}
}

func TestVectorAddEndToEnd(t *testing.T) {
	// c[i] = a[i] + b[i] for 8 elements through the real pipeline.
	p := asm(t, func(b *isa.Builder) {
		emitSetVL(b, 2)
		b.Emit(isa.Inst{Op: isa.OpMovI, Dst: 8, Imm: 4096})
		b.Emit(isa.Inst{Op: isa.OpMovI, Dst: 9, Imm: 8192})
		b.Emit(isa.Inst{Op: isa.OpMovI, Dst: 10, Imm: 12288})
		b.Emit(isa.Inst{Op: isa.OpVLoad, Dst: 1, Src1: 8, Src2: isa.XZR})
		b.Emit(isa.Inst{Op: isa.OpVLoad, Dst: 2, Src1: 9, Src2: isa.XZR})
		b.Emit(isa.Inst{Op: isa.OpVFAdd, Dst: 3, Src1: 1, Src2: 2})
		b.Emit(isa.Inst{Op: isa.OpVStore, Dst: 3, Src1: 10, Src2: isa.XZR})
	})
	r := newRig(t, p)
	for i := 0; i < 8; i++ {
		r.data.WriteF32(uint64(4096+4*i), float32(i))
		r.data.WriteF32(uint64(8192+4*i), float32(10*i))
	}
	r.run(t, 10000)
	for i := 0; i < 8; i++ {
		if got := r.data.ReadF32(uint64(12288 + 4*i)); got != float32(11*i) {
			t.Fatalf("c[%d] = %v, want %v", i, got, float32(11*i))
		}
	}
}

func TestMOBDelaysScalarMemBehindVectorMem(t *testing.T) {
	p := asm(t, func(b *isa.Builder) {
		emitSetVL(b, 2)
		b.Emit(isa.Inst{Op: isa.OpMovI, Dst: 8, Imm: 1 << 20}) // cold: long DRAM latency
		b.Emit(isa.Inst{Op: isa.OpVLoad, Dst: 1, Src1: 8, Src2: isa.XZR})
		b.Emit(isa.Inst{Op: isa.OpMovI, Dst: 9, Imm: 4096})
		b.Emit(isa.Inst{Op: isa.OpSLoadF, Dst: 1, Src1: 9})
	})
	r := newRig(t, p)
	r.run(t, 100000)
	if r.stats.Get("cpu0.mob_stall") == 0 {
		t.Fatal("scalar load must wait for outstanding vector memory (Table 2)")
	}
}

func TestHaltStopsExecution(t *testing.T) {
	p := asm(t, func(b *isa.Builder) {
		b.Emit(isa.Inst{Op: isa.OpMovI, Dst: 1, Imm: 7})
	})
	r := newRig(t, p)
	r.run(t, 100)
	cyclesAtHalt := r.core.HaltCycle()
	r.eng.Step()
	r.eng.Step()
	if r.core.HaltCycle() != cyclesAtHalt || !r.core.Halted() {
		t.Fatal("core must stay halted")
	}
}

func TestPhaseTrackingCounters(t *testing.T) {
	b := isa.NewBuilder("phases")
	b.SetPhase(0)
	for i := 0; i < 64; i++ {
		b.Emit(isa.Inst{Op: isa.OpAddI, Dst: 1, Src1: 1, Imm: 1})
	}
	b.SetPhase(1)
	for i := 0; i < 32; i++ {
		b.Emit(isa.Inst{Op: isa.OpAddI, Dst: 2, Src1: 2, Imm: 1})
	}
	b.SetPhase(-1)
	b.Emit(isa.Inst{Op: isa.OpHalt})
	p := b.MustFinalize()
	r := newRig(t, p)
	r.run(t, 1000)
	if r.stats.Get("cpu0.phase0.cycles") == 0 || r.stats.Get("cpu0.phase1.cycles") == 0 {
		t.Fatal("per-phase cycle counters missing")
	}
}

func TestSkippingStatusSpinIsCaughtByPoison(t *testing.T) {
	// Violating §6.4 — using a register value across a VL change without
	// re-initialization — must surface as NaN, not silent corruption.
	p := asm(t, func(b *isa.Builder) {
		emitSetVL(b, 2)
		b.Emit(isa.Inst{Op: isa.OpVDupI, Dst: 1, FImm: 7})
		emitSetVL(b, 4) // regrow WITHOUT re-initializing Z1
		b.Emit(isa.Inst{Op: isa.OpMovI, Dst: 8, Imm: 4096})
		b.Emit(isa.Inst{Op: isa.OpVStore, Dst: 1, Src1: 8, Src2: isa.XZR})
	})
	r := newRig(t, p)
	r.run(t, 10000)
	v := r.data.ReadF32(4096)
	if v == v { // NaN != NaN
		t.Fatalf("stale register value %v survived reconfiguration; want NaN poison", v)
	}
}

func TestBGEAndVDupX(t *testing.T) {
	p := asm(t, func(b *isa.Builder) {
		emitSetVL(b, 1)
		b.Emit(isa.Inst{Op: isa.OpMovI, Dst: 1, Imm: 5})
		b.Emit(isa.Inst{Op: isa.OpMovI, Dst: 2, Imm: 5})
		b.Branch(isa.Inst{Op: isa.OpBGE, Src1: 1, Src2: 2}, "ok") // 5 >= 5: taken
		b.Emit(isa.Inst{Op: isa.OpMovI, Dst: 10, Imm: 1})
		b.Label("ok")
		// VDUPX broadcasts the float32 of an integer register value's
		// low bits... the payload is the raw X value cast to uint32.
		b.Emit(isa.Inst{Op: isa.OpMovI, Dst: 4, Imm: 0x40400000}) // bits of 3.0f
		b.Emit(isa.Inst{Op: isa.OpVDupX, Dst: 1, Src1: 4})
		b.Emit(isa.Inst{Op: isa.OpMovI, Dst: 8, Imm: 4096})
		b.Emit(isa.Inst{Op: isa.OpVStore, Dst: 1, Src1: 8, Src2: isa.XZR})
	})
	r := newRig(t, p)
	r.run(t, 10000)
	if r.core.X(10) != 0 {
		t.Fatal("BGE should have been taken")
	}
	if got := r.data.ReadF32(4096); got != 3.0 {
		t.Fatalf("VDUPX lane = %v, want 3", got)
	}
}

func TestPoolBackpressureStallsCore(t *testing.T) {
	// With VL=0 nothing issues, so the pool fills and the core must stall
	// on transmit (counted in pool_full_stall).
	b := isa.NewBuilder("flood")
	for i := 0; i < 400; i++ {
		b.Emit(isa.Inst{Op: isa.OpVDupI, Dst: 1, FImm: 1})
	}
	b.Emit(isa.Inst{Op: isa.OpHalt})
	p := b.MustFinalize()
	r := newRig(t, p)
	for i := 0; i < 100; i++ {
		r.eng.Step()
	}
	if r.stats.Get("cpu0.pool_full_stall") == 0 {
		t.Fatal("expected pool backpressure stalls")
	}
	if r.core.Halted() {
		t.Fatal("core should still be blocked behind the full pool")
	}
}

func TestParkStopsFetching(t *testing.T) {
	p := asm(t, func(b *isa.Builder) {
		b.Emit(isa.Inst{Op: isa.OpMovI, Dst: 1, Imm: 1})
		b.Emit(isa.Inst{Op: isa.OpMovI, Dst: 1, Imm: 2})
	})
	r := newRig(t, p)
	r.core.Park()
	for i := 0; i < 10; i++ {
		r.eng.Step()
	}
	if r.core.PC() != 0 || r.core.Parked() == false {
		t.Fatal("parked core must not advance")
	}
	r.core.Unpark()
	r.run(t, 100)
	if r.core.X(1) != 2 {
		t.Fatal("unparked core must finish")
	}
}

func TestSnapshotRestoreSwapsPrograms(t *testing.T) {
	pa := asm(t, func(b *isa.Builder) {
		b.Emit(isa.Inst{Op: isa.OpMovI, Dst: 1, Imm: 111})
	})
	pb := asm(t, func(b *isa.Builder) {
		b.Emit(isa.Inst{Op: isa.OpMovI, Dst: 1, Imm: 222})
	})
	r := newRig(t, pa)
	r.run(t, 100)
	if r.core.X(1) != 111 {
		t.Fatal("program A result wrong")
	}
	saved := r.core.Snapshot()
	r.core.Restore(NewState(pb))
	r.run(t, 100)
	if r.core.X(1) != 222 {
		t.Fatal("program B result wrong")
	}
	r.core.Restore(saved)
	if r.core.X(1) != 111 || !r.core.Halted() {
		t.Fatal("restore must bring back A's state")
	}
}
