package lanemgr

import (
	"sort"

	"occamy/internal/isa"
	"occamy/internal/roofline"
)

// gainEpsilon is the smallest net performance gain (GFLOP/s) considered
// worth an extra ExeBU; it suppresses floating-point noise in Eq. 3.
const gainEpsilon = 1e-9

// Plan computes a lane-partition plan {vl_1..vl_M} for the co-running
// workloads described by their <OI> registers, using the greedy algorithm of
// §5.2 over total ExeBUs:
//
//  1. every workload currently executing a phase (<OI> != 0) receives one
//     ExeBU (the fairness floor — nobody is starved out);
//  2. repeatedly, workloads are sorted by the net performance gain (Eq. 3)
//     of receiving one more ExeBU and each workload with a positive gain is
//     granted one in that order;
//  3. the loop stops when the ExeBUs run out or no workload would gain.
//
// Inactive workloads (zero OI) receive zero. Ties are broken by core index,
// which makes the plan deterministic and splits lanes (near-)equally among
// identical compute-bound workloads. ExeBUs that would benefit nobody stay
// free. If there are more active workloads than ExeBUs, the first come first
// (the paper assumes M <= C <= N, so this is a defensive degenerate case).
func Plan(m roofline.Model, ois []isa.OIPair, total int) []int {
	return planInto(m, ois, total, make([]int, len(ois)), make([]cand, 0, len(ois)))
}

// cand is one candidate row of the marginal-gain sort in Plan.
type cand struct {
	idx  int
	gain float64
}

// planInto is Plan over caller-owned buffers: vls must be len(ois) and
// zeroed, cands is scratch for the gain sort. The Manager's Repartition path
// uses it with pooled buffers so the per-<OI>-write plan computation is
// allocation-free.
func planInto(m roofline.Model, ois []isa.OIPair, total int, vls []int, cands []cand) []int {
	remaining := total

	// Step 1: fairness floor.
	for i, oi := range ois {
		if oi.IsZero() {
			continue
		}
		if remaining == 0 {
			break
		}
		vls[i] = 1
		remaining--
	}

	// Steps 2-3: marginal-gain rounds.
	for remaining > 0 {
		cands = cands[:0]
		for i, oi := range ois {
			if oi.IsZero() || vls[i] == 0 {
				continue
			}
			if g := m.NetGain(vls[i], oi); g > gainEpsilon {
				cands = append(cands, cand{idx: i, gain: g})
			}
		}
		if len(cands) == 0 {
			break
		}
		sort.SliceStable(cands, func(a, b int) bool { return cands[a].gain > cands[b].gain })
		granted := false
		for _, c := range cands {
			if remaining == 0 {
				break
			}
			vls[c.idx]++
			remaining--
			granted = true
		}
		if !granted {
			break
		}
	}
	return vls
}

// Manager is the hardware lane manager: it owns the resource table and
// recomputes the partition plan whenever any core writes <OI> (a
// phase-changing point, §5). It is pure control logic — the co-processor's
// EM-SIMD data path invokes it; timing (the one-off plan-computation
// latency) is modeled there.
type Manager struct {
	Model roofline.Model
	Tbl   *ResourceTbl
	// Repartitions counts plan computations, for the Figure 15 overhead
	// accounting.
	Repartitions uint64
	// Scratch buffers reused across Repartition calls (grown once, then
	// steady-state allocation-free — repartitioning is on the context-switch
	// hot path under preemptive traffic).
	scratchOIs  []isa.OIPair
	scratchVLs  []int
	scratchCand []cand
	// AfterRepartition, when non-nil, runs at the end of every Repartition.
	// In a sharded machine it is the seam between the two planning levels:
	// each cluster's Manager remains the per-cluster pass (fairness floor and
	// <OI>-driven decisions over that cluster's ExeBUs, semantics unchanged),
	// and the hook hands control to Hier.Balance, the global pass that
	// reassigns cores between clusters when load diverges.
	AfterRepartition func()
}

// NewManager returns a lane manager over tbl using roofline model m.
func NewManager(m roofline.Model, tbl *ResourceTbl) *Manager {
	return &Manager{Model: m, Tbl: tbl}
}

// OnOIWrite is called by the EM-SIMD data path when core c writes <OI>. It
// stores the value and publishes a fresh plan in every core's <decision>
// register.
func (g *Manager) OnOIWrite(c int, oi isa.OIPair) {
	g.Tbl.SetOI(c, oi)
	g.Repartition()
}

// Repartition recomputes the plan from the current <OI> registers and writes
// it to the <decision> registers. Lanes the greedy pass leaves free (every
// active workload at its roofline knee) are spread round-robin over the
// active workloads: idle silicon helps nobody, and a wider data path lets a
// memory-bound workload keep its fair share of the shared memory bandwidth —
// this is what preserves the paper's Case 3 (<memory, memory>) parity.
// Planning runs over the usable pool, so after a fault has excluded units
// the fresh decisions fit the surviving ExeBUs (fairness floor included).
func (g *Manager) Repartition() {
	n := g.Tbl.Cores()
	if cap(g.scratchOIs) < n {
		g.scratchOIs = make([]isa.OIPair, 0, n)
		g.scratchVLs = make([]int, n)
		g.scratchCand = make([]cand, 0, n)
	}
	ois := g.Tbl.ActiveOIsInto(g.scratchOIs[:0])
	for i := range g.scratchVLs {
		g.scratchVLs[i] = 0
	}
	plan := planInto(g.Model, ois, g.Tbl.Usable(), g.scratchVLs[:n], g.scratchCand[:0])
	free := g.Tbl.Usable()
	active := 0
	for c, vl := range plan {
		free -= vl
		if !ois[c].IsZero() {
			active++
		}
	}
	for c := 0; free > 0 && active > 0; c = (c + 1) % len(plan) {
		if !ois[c].IsZero() {
			plan[c]++
			free--
		}
	}
	// Degraded-pool fairness floor: when faults shrink the usable pool below
	// the active-core count, the greedy pass starves someone with a zero
	// decision — which an elastic binary would adopt and livelock on. Publish
	// at least one granule per active core instead; the cores then time-share
	// the survivors through the reconfiguration protocol (a starved core's
	// grow request waits until a peer's phase ends and releases lanes).
	// Never reached while the pool is healthy (usable >= active cores).
	if g.Tbl.Failed() > 0 {
		for c := range plan {
			if plan[c] == 0 && !ois[c].IsZero() {
				plan[c] = 1
			}
		}
	}
	for c, vl := range plan {
		g.Tbl.SetDecision(c, vl)
	}
	g.Repartitions++
	if g.AfterRepartition != nil {
		g.AfterRepartition()
	}
}
