// Package lanemgr implements the hardware SIMD lane manager of §5: the
// on-chip resource table holding the five EM-SIMD registers per core
// (Table 1, §4.2.1) and the greedy, roofline-guided lane-partitioning
// algorithm of §5.2 that runs whenever a workload writes <OI> at a
// phase-changing point.
package lanemgr

import (
	"fmt"

	"occamy/internal/isa"
)

// ResourceTbl is the (4*C+1)-register table of §4.2.1: per core the four
// dedicated registers <OI>, <decision>, <VL>, <status>, plus one shared <AL>
// register. Registers are stored raw (32-bit) exactly as the MSR/MRS data
// path sees them; typed accessors decode them.
type ResourceTbl struct {
	total    int // N: number of ExeBUs (128-bit granules)
	failed   int // units excluded from allocation by fault injection
	oi       []uint32
	decision []uint32
	vl       []uint32
	status   []uint32
}

// Topology describes how the machine's ExeBUs are sharded across
// co-processor clusters. ExeBUs is the machine-wide total; each cluster's
// resource table manages ExeBUs/Clusters of them. The flat single-table
// machine is Topology{Clusters: 1, Cores: C, ExeBUs: N}.
type Topology struct {
	// Clusters is the number of co-processor clusters (>= 1).
	Clusters int
	// Cores is the number of CPU cores the table serves. Every shard keeps a
	// row per global core ID — rows for cores homed on other clusters stay
	// inert — so no ID translation exists anywhere in the data path.
	Cores int
	// ExeBUs is the machine-wide ExeBU count, divided evenly over clusters.
	ExeBUs int
}

// Validate checks the shard arithmetic and returns an actionable error.
func (t Topology) Validate() error {
	if t.Clusters < 1 {
		return fmt.Errorf("lanemgr: topology needs at least 1 cluster, got %d", t.Clusters)
	}
	if t.Cores < 1 {
		return fmt.Errorf("lanemgr: topology needs at least 1 core, got %d", t.Cores)
	}
	if t.ExeBUs < t.Clusters {
		return fmt.Errorf("lanemgr: %d ExeBUs cannot cover %d clusters (need >= 1 each)", t.ExeBUs, t.Clusters)
	}
	if t.ExeBUs%t.Clusters != 0 {
		return fmt.Errorf("lanemgr: %d ExeBUs do not shard evenly over %d clusters", t.ExeBUs, t.Clusters)
	}
	return nil
}

// PerCluster returns the ExeBU budget of one shard.
func (t Topology) PerCluster() int { return t.ExeBUs / t.Clusters }

// NewResourceTbl returns one cluster shard of topo: a table with a row per
// CPU core sharing the cluster's ExeBUs/Clusters execution units. All lanes
// start free: every <VL> is 0 and <AL> = the shard budget.
func NewResourceTbl(topo Topology) *ResourceTbl {
	if err := topo.Validate(); err != nil {
		panic(err)
	}
	return &ResourceTbl{
		total:    topo.PerCluster(),
		oi:       make([]uint32, topo.Cores),
		decision: make([]uint32, topo.Cores),
		vl:       make([]uint32, topo.Cores),
		status:   make([]uint32, topo.Cores),
	}
}

// Cores returns the number of CPU cores served.
func (t *ResourceTbl) Cores() int { return len(t.oi) }

// Total returns N, the number of ExeBUs being shared.
func (t *ResourceTbl) Total() int { return t.total }

// Fail marks n more ExeBUs failed, clamped to the units still usable. It
// returns the number actually marked. Failed units are excluded from <AL>
// and from TryReconfigure's feasibility check; already-allocated lanes are
// not revoked here — detection and drain-gated revocation are the fault
// controller's job.
func (t *ResourceTbl) Fail(n int) int {
	if n > t.total-t.failed {
		n = t.total - t.failed
	}
	if n < 0 {
		n = 0
	}
	t.failed += n
	return n
}

// Repair returns n failed ExeBUs to service (clamped), and reports how many
// actually came back.
func (t *ResourceTbl) Repair(n int) int {
	if n > t.failed {
		n = t.failed
	}
	if n < 0 {
		n = 0
	}
	t.failed -= n
	return n
}

// Failed returns the number of ExeBUs currently excluded by faults.
func (t *ResourceTbl) Failed() int { return t.failed }

// Usable returns the number of ExeBUs available for allocation: Total minus
// the failed units.
func (t *ResourceTbl) Usable() int { return t.total - t.failed }

// AL returns the shared <AL> register: the number of free, usable ExeBUs.
// Immediately after a fault the allocations can transiently exceed the
// usable pool, making AL negative until the over-allocated cores drain and
// shrink; the signed result keeps that arithmetic exact (the raw MRS view
// saturates at zero, as the hardware register would).
func (t *ResourceTbl) AL() int {
	used := 0
	for _, v := range t.vl {
		used += int(v)
	}
	return t.Usable() - used
}

// OI returns core c's decoded <OI> register.
func (t *ResourceTbl) OI(c int) isa.OIPair { return isa.UnpackOI(t.oi[c]) }

// SetOI writes core c's <OI> register.
func (t *ResourceTbl) SetOI(c int, p isa.OIPair) { t.oi[c] = isa.PackOI(p) }

// Decision returns core c's <decision> register (suggested VL in granules).
func (t *ResourceTbl) Decision(c int) int { return int(t.decision[c]) }

// SetDecision writes core c's <decision> register.
func (t *ResourceTbl) SetDecision(c, vl int) { t.decision[c] = uint32(vl) }

// VL returns core c's configured vector length in granules.
func (t *ResourceTbl) VL(c int) int { return int(t.vl[c]) }

// Status returns core c's <status> register: true if the last <VL> write
// succeeded.
func (t *ResourceTbl) Status(c int) bool { return t.status[c] == 1 }

// ReadRaw reads a register as the MRS data path does.
func (t *ResourceTbl) ReadRaw(c int, r isa.SysReg) uint32 {
	switch r {
	case isa.SysOI:
		return t.oi[c]
	case isa.SysDecision:
		return t.decision[c]
	case isa.SysVL:
		return t.vl[c]
	case isa.SysStatus:
		return t.status[c]
	case isa.SysAL:
		if al := t.AL(); al > 0 {
			return uint32(al)
		}
		return 0
	default:
		return 0
	}
}

// TryReconfigure implements the atomic register update of §4.2.2 for a
// successfully drained MSR <VL>,l: it succeeds iff c.<VL> + <AL> >= l, in
// which case it moves lanes between core c and the free pool and sets
// <status> to 1; otherwise it leaves the allocation unchanged and sets
// <status> to 0. The caller (the co-processor's EM-SIMD data path) is
// responsible for the pipeline-drain precondition.
// A shrink (l <= current <VL>) always succeeds — releasing lanes can never
// violate capacity — which is what lets over-allocated cores drain down one
// by one after a fault has shrunk the usable pool below the outstanding
// allocations (a grow would fail there, because <AL> is negative).
func (t *ResourceTbl) TryReconfigure(c, l int) bool {
	if l < 0 || l > t.Usable() {
		t.status[c] = 0
		return false
	}
	if l > t.VL(c) && t.VL(c)+t.AL() < l {
		t.status[c] = 0
		return false
	}
	t.vl[c] = uint32(l)
	t.status[c] = 1
	return true
}

// ForceVL is the fault controller's drain-gated revocation path: it rewrites
// core c's <VL> directly, bypassing the feasibility check (shrinks only —
// grows must go through TryReconfigure so the EM-SIMD protocol's invariant
// re-emission runs). The caller is responsible for the §4.2.2 drained-
// pipeline precondition.
func (t *ResourceTbl) ForceVL(c, l int) {
	if l < 0 || l > t.VL(c) {
		return
	}
	t.vl[c] = uint32(l)
}

// RestoreVL re-installs a saved allocation on core c during an OS context
// restore, bypassing the feasibility check. It exists for one situation: the
// usable pool shrank below the task's saved <VL> while it was descheduled,
// so TryReconfigure can never grant it — yet the task must resume under the
// exact VL it was preempted with (a mid-strip VL change corrupts the strip's
// bookkeeping). The resulting negative <AL> is the same transient
// over-allocation that follows an in-flight fault; the task's partition
// monitor shrinks to the planner's decision at its next strip boundary.
func (t *ResourceTbl) RestoreVL(c, l int) {
	if l < 0 {
		return
	}
	t.vl[c] = uint32(l)
	t.status[c] = 1
}

// TblState is a deep copy of the resource table's registers and fault
// exclusions, for checkpoint/restore.
type TblState struct {
	failed   int
	oi       []uint32
	decision []uint32
	vl       []uint32
	status   []uint32
}

// Snapshot captures the table's full state.
func (t *ResourceTbl) Snapshot() TblState {
	return TblState{
		failed:   t.failed,
		oi:       append([]uint32(nil), t.oi...),
		decision: append([]uint32(nil), t.decision...),
		vl:       append([]uint32(nil), t.vl...),
		status:   append([]uint32(nil), t.status...),
	}
}

// Restore rewinds the table to a Snapshot taken on a same-shaped instance.
func (t *ResourceTbl) Restore(st TblState) {
	t.failed = st.failed
	copy(t.oi, st.oi)
	copy(t.decision, st.decision)
	copy(t.vl, st.vl)
	copy(t.status, st.status)
}

// ActiveOIs returns the decoded <OI> of every core; cores not executing a
// phase hold the zero pair.
func (t *ResourceTbl) ActiveOIs() []isa.OIPair {
	return t.ActiveOIsInto(make([]isa.OIPair, 0, t.Cores()))
}

// ActiveOIsInto appends the decoded <OI> of every core to dst and returns it.
// Repartitioning runs on every <OI> write — a context-switch-rate event under
// preemptive scheduling — so the manager reuses one scratch buffer instead of
// allocating per plan.
func (t *ResourceTbl) ActiveOIsInto(dst []isa.OIPair) []isa.OIPair {
	for c := 0; c < t.Cores(); c++ {
		dst = append(dst, t.OI(c))
	}
	return dst
}
