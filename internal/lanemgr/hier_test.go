package lanemgr

import (
	"testing"

	"occamy/internal/isa"
	"occamy/internal/roofline"
)

// newHier builds a hierarchy of `clusters` shards over `cores` cores sharing
// `exebus` machine-wide ExeBUs, wiring each Manager's AfterRepartition into
// Balance exactly as the co-processor complex does.
func newHier(clusters, cores, exebus int) *Hier {
	topo := Topology{Clusters: clusters, Cores: cores, ExeBUs: exebus}
	mdl := roofline.Default()
	mgrs := make([]*Manager, clusters)
	for k := range mgrs {
		mgrs[k] = NewManager(mdl, NewResourceTbl(topo))
	}
	h := NewHier(topo, mgrs)
	for _, m := range mgrs {
		m.AfterRepartition = h.Balance
	}
	return h
}

func TestHierInitialAssignmentGroupsCores(t *testing.T) {
	h := newHier(2, 8, 16)
	for c := 0; c < 8; c++ {
		want := c / 4
		if h.Home(c) != want {
			t.Errorf("core %d assigned to cluster %d, want %d", c, h.Home(c), want)
		}
	}
	if h.Topo.PerCluster() != 8 {
		t.Fatalf("per-cluster budget = %d, want 8", h.Topo.PerCluster())
	}
}

func TestHierBalanceProposesMigrationOnImbalance(t *testing.T) {
	h := newHier(2, 8, 16)
	var got []int
	h.OnMigrate = func(core, from, to int) bool {
		got = []int{core, from, to}
		return true
	}
	compute := isa.OIPair{Issue: 1, Mem: 1}
	light := isa.OIPair{Issue: 0.05, Mem: 0.05}
	// Cluster 0 hosts three tenants (cores 0-2), cluster 1 one (core 4):
	// imbalance 2 >= threshold. Core 2's light phase earns the smallest
	// decision, so it is the victim.
	for _, c := range []int{0, 1} {
		h.Mgrs[0].OnOIWrite(c, compute)
	}
	h.Mgrs[1].OnOIWrite(4, compute)
	h.Mgrs[0].OnOIWrite(2, light)
	if got == nil {
		t.Fatal("imbalanced clusters proposed no migration")
	}
	if got[0] != 2 || got[1] != 0 || got[2] != 1 {
		t.Fatalf("proposal (core=%d from=%d to=%d), want (2, 0, 1)", got[0], got[1], got[2])
	}
	// The proposal alone must not move the assignment.
	if h.Home(2) != 0 {
		t.Fatal("assignment changed before CompleteMigration")
	}
	h.CompleteMigration(2, 1)
	if h.Home(2) != 1 || h.Migrations != 1 {
		t.Fatalf("after completion: home=%d migrations=%d", h.Home(2), h.Migrations)
	}
}

func TestHierBalanceRespectsThreshold(t *testing.T) {
	h := newHier(2, 8, 16)
	proposed := false
	h.OnMigrate = func(core, from, to int) bool {
		proposed = true
		return true
	}
	compute := isa.OIPair{Issue: 1, Mem: 1}
	// Two tenants vs one: imbalance 1 < DefaultThreshold. OIs are installed
	// directly and one repartition judges the settled state, as a machine
	// whose phases announced before any plan ran.
	h.Mgrs[0].Tbl.SetOI(0, compute)
	h.Mgrs[0].Tbl.SetOI(1, compute)
	h.Mgrs[1].Tbl.SetOI(4, compute)
	h.Mgrs[0].Repartition()
	h.Mgrs[1].Repartition()
	if proposed {
		t.Fatal("one tenant of imbalance must sit below the hysteresis threshold")
	}
}

func TestHierBalanceWeighsDegradedShards(t *testing.T) {
	h := newHier(2, 8, 16)
	var got []int
	h.OnMigrate = func(core, from, to int) bool {
		got = []int{core, from, to}
		return true
	}
	// Equal tenant counts, but cluster 0 lost most of its shard: its
	// active/usable load dominates. Tenant-count hysteresis still gates the
	// move, so equal counts must not migrate even under degradation.
	h.Mgrs[0].Tbl.Fail(6)
	compute := isa.OIPair{Issue: 1, Mem: 1}
	h.Mgrs[0].Tbl.SetOI(0, compute)
	h.Mgrs[0].Tbl.SetOI(1, compute)
	h.Mgrs[1].Tbl.SetOI(4, compute)
	h.Mgrs[1].Tbl.SetOI(5, compute)
	h.Mgrs[0].Repartition()
	h.Mgrs[1].Repartition()
	if got != nil {
		t.Fatalf("equal tenant counts migrated: %v", got)
	}
	// A third tenant on the degraded shard crosses the threshold; the
	// degraded cluster must be chosen as the source.
	h.Mgrs[0].Tbl.SetOI(2, compute)
	h.Mgrs[1].Tbl.SetOI(5, isa.OIPair{})
	h.Mgrs[1].Repartition()
	h.Mgrs[0].Repartition()
	if got == nil {
		t.Fatal("overloaded degraded shard proposed no migration")
	}
	if got[1] != 0 || got[2] != 1 {
		t.Fatalf("migration direction (from=%d to=%d), want (0, 1)", got[1], got[2])
	}
}

func TestHierSingleClusterNeverMigrates(t *testing.T) {
	h := newHier(1, 4, 8)
	h.OnMigrate = func(core, from, to int) bool {
		t.Fatal("single-cluster hierarchy proposed a migration")
		return false
	}
	for c := 0; c < 4; c++ {
		h.Mgrs[0].OnOIWrite(c, isa.OIPair{Issue: 1, Mem: 1})
	}
}

func TestHierSnapshotRestore(t *testing.T) {
	h := newHier(2, 4, 8)
	st := h.Snapshot()
	h.CompleteMigration(0, 1)
	h.CompleteMigration(3, 0)
	if h.Home(0) != 1 || h.Home(3) != 0 || h.Migrations != 2 {
		t.Fatal("migrations not recorded")
	}
	h.Restore(st)
	if h.Home(0) != 0 || h.Home(3) != 1 || h.Migrations != 0 {
		t.Fatalf("restore did not rewind: assign=%v migrations=%d", h.Assign, h.Migrations)
	}
}
