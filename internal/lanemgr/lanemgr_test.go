package lanemgr

import (
	"testing"
	"testing/quick"

	"occamy/internal/isa"
	"occamy/internal/roofline"
)

func TestResourceTblInitialState(t *testing.T) {
	tbl := newTbl(2, 8)
	if tbl.Cores() != 2 || tbl.Total() != 8 {
		t.Fatalf("dims: cores=%d total=%d", tbl.Cores(), tbl.Total())
	}
	if tbl.AL() != 8 {
		t.Fatalf("initial AL = %d, want 8", tbl.AL())
	}
	for c := 0; c < 2; c++ {
		if tbl.VL(c) != 0 || !tbl.OI(c).IsZero() {
			t.Fatalf("core %d not empty at reset", c)
		}
	}
}

func TestTryReconfigureGrowShrink(t *testing.T) {
	tbl := newTbl(2, 8)
	if !tbl.TryReconfigure(0, 5) {
		t.Fatal("grow from free pool must succeed")
	}
	if tbl.VL(0) != 5 || tbl.AL() != 3 || !tbl.Status(0) {
		t.Fatalf("after grow: vl=%d al=%d status=%v", tbl.VL(0), tbl.AL(), tbl.Status(0))
	}
	if tbl.TryReconfigure(1, 4) {
		t.Fatal("grow beyond AL must fail")
	}
	if tbl.Status(1) {
		t.Fatal("failed reconfigure must clear <status>")
	}
	if tbl.VL(1) != 0 || tbl.AL() != 3 {
		t.Fatal("failed reconfigure must not change allocations")
	}
	if !tbl.TryReconfigure(0, 2) { // shrink releases lanes
		t.Fatal("shrink must succeed")
	}
	if tbl.AL() != 6 {
		t.Fatalf("AL after shrink = %d, want 6", tbl.AL())
	}
	if !tbl.TryReconfigure(1, 4) {
		t.Fatal("grow after peer shrink must succeed")
	}
}

func TestTryReconfigureSameValueAndZero(t *testing.T) {
	tbl := newTbl(2, 8)
	tbl.TryReconfigure(0, 4)
	if !tbl.TryReconfigure(0, 4) {
		t.Fatal("rewriting the current VL must succeed")
	}
	if !tbl.TryReconfigure(0, 0) {
		t.Fatal("releasing all lanes must succeed")
	}
	if tbl.AL() != 8 {
		t.Fatalf("AL = %d, want 8", tbl.AL())
	}
}

func TestTryReconfigureRejectsOutOfRange(t *testing.T) {
	tbl := newTbl(1, 8)
	if tbl.TryReconfigure(0, 9) || tbl.TryReconfigure(0, -1) {
		t.Fatal("out-of-range VL must fail")
	}
}

func TestReadRawMatchesTypedAccessors(t *testing.T) {
	tbl := newTbl(2, 8)
	oi := isa.OIPair{Issue: 0.5, Mem: 0.25}
	tbl.SetOI(1, oi)
	tbl.SetDecision(1, 3)
	tbl.TryReconfigure(1, 2)
	if isa.UnpackOI(tbl.ReadRaw(1, isa.SysOI)) != oi {
		t.Error("<OI> raw read mismatch")
	}
	if tbl.ReadRaw(1, isa.SysDecision) != 3 {
		t.Error("<decision> raw read mismatch")
	}
	if tbl.ReadRaw(1, isa.SysVL) != 2 {
		t.Error("<VL> raw read mismatch")
	}
	if tbl.ReadRaw(1, isa.SysStatus) != 1 {
		t.Error("<status> raw read mismatch")
	}
	if tbl.ReadRaw(0, isa.SysAL) != 6 {
		t.Errorf("<AL> raw read = %d, want 6", tbl.ReadRaw(0, isa.SysAL))
	}
}

var mdl = roofline.Default()

func TestPlanGivesEverythingToLoneComputeWorkload(t *testing.T) {
	ois := []isa.OIPair{{Issue: 10, Mem: 10}, {}}
	plan := Plan(mdl, ois, 8)
	if plan[0] != 8 || plan[1] != 0 {
		t.Fatalf("plan = %v, want [8 0]", plan)
	}
}

func TestPlanEqualSplitForIdenticalComputeWorkloads(t *testing.T) {
	// §5.2 fairness: "When only compute-intensive workloads are
	// co-running, the SIMD lanes will be divided equally."
	ois := []isa.OIPair{{Issue: 10, Mem: 10}, {Issue: 10, Mem: 10}}
	plan := Plan(mdl, ois, 8)
	if plan[0] != 4 || plan[1] != 4 {
		t.Fatalf("plan = %v, want [4 4]", plan)
	}
}

func TestPlanMemoryBoundWorkloadStopsAtKnee(t *testing.T) {
	// A memory-bound phase saturates early; the compute phase takes the
	// rest. OI like WL20.p1 (oi=0.13): AP = min(8vl, 32vl*0.13, 64*0.13).
	mem := isa.OIPair{Issue: 0.13, Mem: 0.13}
	comp := isa.OIPair{Issue: 10, Mem: 10}
	plan := Plan(mdl, []isa.OIPair{mem, comp}, 8)
	sat := mdl.SaturationVL(mem, 8)
	if plan[0] != sat {
		t.Fatalf("memory workload got %d granules, want saturation point %d", plan[0], sat)
	}
	if plan[1] != 8-sat {
		t.Fatalf("compute workload got %d granules, want %d", plan[1], 8-sat)
	}
}

func TestPlanFairnessFloor(t *testing.T) {
	// Even a hopelessly memory-bound workload receives one ExeBU (§5.2:
	// avoid "starving out" completely).
	ois := []isa.OIPair{{Issue: 0.001, Mem: 0.001}, {Issue: 10, Mem: 10}}
	plan := Plan(mdl, ois, 8)
	if plan[0] < 1 {
		t.Fatalf("plan = %v; memory workload starved", plan)
	}
}

func TestPlanLeavesUselessLanesFree(t *testing.T) {
	// A lone workload that saturates at 2 granules should not be handed
	// the other 6 (§5.2 step 3: stop when no further gain).
	oi := isa.OIPair{Issue: 10, Mem: 0.2} // mem-bound at 64*0.2=12.8 GFLOPs -> sat at 2
	plan := Plan(mdl, []isa.OIPair{oi, {}}, 8)
	if plan[0] != mdl.SaturationVL(oi, 8) {
		t.Fatalf("plan = %v, want saturation allocation %d", plan, mdl.SaturationVL(oi, 8))
	}
}

func TestPlanMotivatingExampleShape(t *testing.T) {
	// §2: in phase p1, WL#0 (654.rom_s, low OI) gets 8 lanes (2 granules)
	// and WL#1 (621.wrf_s, compute) gets 24 (6 granules); in p2 WL#0
	// grows to 12 lanes (3 granules). OI values approximate Table 3.
	p1 := Plan(mdl, []isa.OIPair{{Issue: 0.09, Mem: 0.09}, {Issue: 1, Mem: 1}}, 8)
	if p1[0] != 2 || p1[1] != 6 {
		t.Fatalf("p1 plan = %v, want [2 6] (8/24 lanes)", p1)
	}
	// p2 (rho_eos) has data reuse, so oi_issue < oi_mem; the pair is what
	// pushes the decision to 12 lanes rather than 8 (cf. §7.4 Case 4).
	p2 := Plan(mdl, []isa.OIPair{{Issue: 0.12, Mem: 0.17}, {Issue: 1, Mem: 1}}, 8)
	if p2[0] != 3 || p2[1] != 5 {
		t.Fatalf("p2 plan = %v, want [3 5] (12/20 lanes)", p2)
	}
	p3 := Plan(mdl, []isa.OIPair{{}, {Issue: 1, Mem: 1}}, 8)
	if p3[0] != 0 || p3[1] != 8 {
		t.Fatalf("p3 plan = %v, want [0 8] (0/32 lanes)", p3)
	}
}

func TestPlanPropertySumAndFloor(t *testing.T) {
	f := func(raw [4]uint16, nSeed uint8) bool {
		total := int(nSeed%15) + 1
		ois := make([]isa.OIPair, len(raw))
		active := 0
		for i, r := range raw {
			if r%3 == 0 {
				continue // inactive workload
			}
			ois[i] = isa.OIPair{Issue: float64(r%512)/256 + 0.004, Mem: float64(r%512)/256 + 0.004}
			active++
		}
		plan := Plan(mdl, ois, total)
		sum := 0
		for i, vl := range plan {
			if vl < 0 {
				return false
			}
			if ois[i].IsZero() && vl != 0 {
				return false // inactive workloads get nothing
			}
			sum += vl
		}
		if sum > total {
			return false
		}
		// Fairness floor whenever capacity allows.
		if active <= total {
			for i, vl := range plan {
				if !ois[i].IsZero() && vl < 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPlanMonotoneInTotal(t *testing.T) {
	// Growing the ExeBU pool never shrinks anyone's allocation: the
	// greedy rounds are a prefix-stable sequence of grants.
	f := func(a, b uint16, nSeed uint8) bool {
		ois := []isa.OIPair{
			{Issue: float64(a%512)/256 + 0.004, Mem: float64(a%512)/256 + 0.004},
			{Issue: float64(b%512)/256 + 0.004, Mem: float64(b%512)/256 + 0.004},
		}
		n := int(nSeed%14) + 1
		p1 := Plan(mdl, ois, n)
		p2 := Plan(mdl, ois, n+1)
		return p2[0] >= p1[0] && p2[1] >= p1[1]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPlanDegenerateMoreWorkloadsThanLanes(t *testing.T) {
	ois := []isa.OIPair{{Issue: 1, Mem: 1}, {Issue: 1, Mem: 1}, {Issue: 1, Mem: 1}}
	plan := Plan(mdl, ois, 2)
	sum := 0
	for _, vl := range plan {
		sum += vl
	}
	if sum != 2 {
		t.Fatalf("plan %v must hand out exactly the 2 available", plan)
	}
}

func TestManagerPublishesDecisions(t *testing.T) {
	tbl := newTbl(2, 8)
	mgr := NewManager(mdl, tbl)
	mgr.OnOIWrite(0, isa.OIPair{Issue: 0.09, Mem: 0.09})
	mgr.OnOIWrite(1, isa.OIPair{Issue: 1, Mem: 1})
	if tbl.Decision(0) != 2 || tbl.Decision(1) != 6 {
		t.Fatalf("decisions = [%d %d], want [2 6]", tbl.Decision(0), tbl.Decision(1))
	}
	if mgr.Repartitions != 2 {
		t.Fatalf("repartitions = %d, want 2", mgr.Repartitions)
	}
	// Phase exit: core 0 writes OI=0; everything goes to core 1.
	mgr.OnOIWrite(0, isa.OIPair{})
	if tbl.Decision(0) != 0 || tbl.Decision(1) != 8 {
		t.Fatalf("post-exit decisions = [%d %d], want [0 8]", tbl.Decision(0), tbl.Decision(1))
	}
}

// TestPlanGreedyProperties cross-checks the round-based greedy of §5.2
// against brute-force enumeration of all feasible two-workload partitions.
// The algorithm is deliberately *fair* rather than per-unit throughput
// optimal (it splits lanes equally among identical compute-bound workloads
// instead of handing them all to one), so the guarantees we verify are:
//
//  1. it never exceeds the exhaustive total-performance optimum, and
//  2. it is Pareto-efficient: no ExeBU is left free while some workload
//     still has a positive marginal gain (Eq. 3).
func TestPlanGreedyProperties(t *testing.T) {
	f := func(a, b uint16) bool {
		ois := []isa.OIPair{
			{Issue: float64(a%512)/256 + 0.004, Mem: float64(a%768)/256 + 0.004},
			{Issue: float64(b%512)/256 + 0.004, Mem: float64(b%768)/256 + 0.004},
		}
		const total = 8
		plan := Plan(mdl, ois, total)
		got := mdl.Attainable(plan[0], ois[0]) + mdl.Attainable(plan[1], ois[1])
		best := 0.0
		for v0 := 1; v0 < total; v0++ {
			for v1 := 1; v0+v1 <= total; v1++ {
				perf := mdl.Attainable(v0, ois[0]) + mdl.Attainable(v1, ois[1])
				if perf > best {
					best = perf
				}
			}
		}
		if got > best+1e-6 {
			return false
		}
		if free := total - plan[0] - plan[1]; free > 0 {
			for i := range ois {
				if mdl.NetGain(plan[i], ois[i]) > 1e-9 {
					return false // free lane wasted on a hungry workload
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
