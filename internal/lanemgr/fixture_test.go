package lanemgr

// newTbl is the shared test fixture: one single-cluster shard with the given
// core count and ExeBU budget — the flat table every pre-hierarchy test was
// written against.
func newTbl(cores, total int) *ResourceTbl {
	return NewResourceTbl(Topology{Clusters: 1, Cores: cores, ExeBUs: total})
}
