package lanemgr

import (
	"testing"

	"occamy/internal/isa"
)

func TestFailRepairShrinksUsablePool(t *testing.T) {
	tbl := newTbl(2, 8)
	if got := tbl.Fail(3); got != 3 {
		t.Fatalf("Fail(3) = %d, want 3", got)
	}
	if tbl.Usable() != 5 || tbl.Failed() != 3 || tbl.AL() != 5 {
		t.Fatalf("after Fail(3): usable=%d failed=%d AL=%d", tbl.Usable(), tbl.Failed(), tbl.AL())
	}
	// Clamp: only 5 usable units remain.
	if got := tbl.Fail(100); got != 5 {
		t.Fatalf("Fail(100) = %d, want 5", got)
	}
	if tbl.Usable() != 0 {
		t.Fatalf("usable = %d, want 0", tbl.Usable())
	}
	if got := tbl.Repair(6); got != 6 {
		t.Fatalf("Repair(6) = %d, want 6", got)
	}
	if tbl.Usable() != 6 || tbl.Failed() != 2 {
		t.Fatalf("after Repair(6): usable=%d failed=%d", tbl.Usable(), tbl.Failed())
	}
	if got := tbl.Repair(100); got != 2 {
		t.Fatalf("Repair(100) = %d, want 2 (clamped)", got)
	}
}

// TestNegativeALAfterFault: allocations made before a fault can exceed the
// shrunk usable pool. The signed AL view goes negative; the raw MRS view
// saturates at zero.
func TestNegativeALAfterFault(t *testing.T) {
	tbl := newTbl(2, 8)
	tbl.TryReconfigure(0, 4)
	tbl.TryReconfigure(1, 4)
	tbl.Fail(2)
	if tbl.AL() != -2 {
		t.Fatalf("AL = %d, want -2", tbl.AL())
	}
	if raw := tbl.ReadRaw(0, isa.SysAL); raw != 0 {
		t.Fatalf("raw AL = %d, want 0 (saturated)", raw)
	}
}

// TestShrinkAlwaysSucceedsWhenOverAllocated: with both cores over-allocated
// after a fault, neither could grow, but each can shrink toward its share of
// the surviving pool — the sequence that unwinds over-allocation.
func TestShrinkAlwaysSucceedsWhenOverAllocated(t *testing.T) {
	tbl := newTbl(2, 8)
	tbl.TryReconfigure(0, 4)
	tbl.TryReconfigure(1, 4)
	tbl.Fail(2) // usable 6, allocated 8
	if tbl.TryReconfigure(0, 5) {
		t.Fatal("grow while over-allocated must fail")
	}
	if !tbl.TryReconfigure(0, 3) {
		t.Fatal("shrink while over-allocated must succeed")
	}
	if !tbl.TryReconfigure(1, 3) {
		t.Fatal("second shrink must succeed")
	}
	if tbl.AL() != 0 {
		t.Fatalf("AL = %d, want 0 after both cores shrank", tbl.AL())
	}
	// Capacity check now binds to the usable pool, not the physical total.
	if tbl.TryReconfigure(0, 7) {
		t.Fatal("grow beyond usable pool must fail")
	}
	if !tbl.TryReconfigure(1, 0) || !tbl.TryReconfigure(0, 6) {
		t.Fatal("grow to full usable pool must succeed once lanes are free")
	}
}

func TestForceVLShrinkOnly(t *testing.T) {
	tbl := newTbl(2, 8)
	tbl.TryReconfigure(0, 4)
	tbl.ForceVL(0, 2)
	if tbl.VL(0) != 2 {
		t.Fatalf("VL after ForceVL = %d, want 2", tbl.VL(0))
	}
	tbl.ForceVL(0, 6) // grows are ignored
	if tbl.VL(0) != 2 {
		t.Fatalf("ForceVL must not grow: VL = %d, want 2", tbl.VL(0))
	}
	tbl.ForceVL(0, -1) // nonsense is ignored
	if tbl.VL(0) != 2 {
		t.Fatalf("ForceVL(-1) must be a no-op: VL = %d", tbl.VL(0))
	}
}

// TestRepartitionPlansOverSurvivors: after units fail, fresh decisions fit
// the usable pool and keep the fairness floor.
func TestRepartitionPlansOverSurvivors(t *testing.T) {
	tbl := newTbl(2, 8)
	mgr := NewManager(mdl, tbl)
	compute := isa.OIPair{Issue: 1, Mem: 1}
	mgr.OnOIWrite(0, compute)
	mgr.OnOIWrite(1, compute)
	if tbl.Decision(0)+tbl.Decision(1) != 8 {
		t.Fatalf("fault-free decisions sum %d, want 8", tbl.Decision(0)+tbl.Decision(1))
	}
	tbl.Fail(3)
	mgr.Repartition()
	d0, d1 := tbl.Decision(0), tbl.Decision(1)
	if d0+d1 != 5 {
		t.Fatalf("post-fault decisions [%d %d] sum %d, want 5 (usable)", d0, d1, d0+d1)
	}
	if d0 < 1 || d1 < 1 {
		t.Fatalf("fairness floor violated: decisions [%d %d]", d0, d1)
	}
	tbl.Repair(3)
	mgr.Repartition()
	if tbl.Decision(0)+tbl.Decision(1) != 8 {
		t.Fatalf("post-repair decisions sum %d, want 8", tbl.Decision(0)+tbl.Decision(1))
	}
}
