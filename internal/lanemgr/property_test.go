package lanemgr

import (
	"testing"
	"testing/quick"

	"occamy/internal/isa"
	"occamy/internal/roofline"
)

// decodeOIs expands a compact byte spec into per-core <OI> registers: 0 marks
// an inactive core, anything else a live phase with an intensity derived from
// the byte. Shared by the property and fuzz harnesses below.
func decodeOIs(spec []byte) []isa.OIPair {
	ois := make([]isa.OIPair, len(spec))
	for i, b := range spec {
		if b == 0 {
			continue
		}
		ois[i] = isa.OIPair{
			Issue: float64(b%64)/16 + 0.004,
			Mem:   float64(b/4%64)/16 + 0.004,
		}
	}
	return ois
}

// checkPartition asserts the partitioner's invariants for a decision vector
// published over the given pool. It returns a non-empty description of the
// first violated invariant, or "".
func checkPartition(ois []isa.OIPair, dec []int, usable, failed int) string {
	active, sum := 0, 0
	for c, d := range dec {
		if d < 0 {
			return "negative decision"
		}
		if ois[c].IsZero() && d != 0 {
			return "inactive core received lanes"
		}
		if !ois[c].IsZero() {
			active++
		}
		sum += d
	}
	// Fairness floor: whenever the pool can cover every active core, each
	// gets at least one ExeBU; under a degraded pool (failed units) the floor
	// holds unconditionally — the cores time-share the survivors.
	if active <= usable || failed > 0 {
		for c, d := range dec {
			if !ois[c].IsZero() && d < 1 {
				return "fairness floor violated"
			}
		}
	}
	// Conservation: an idle machine pins every decision at zero; otherwise
	// the full usable pool is handed out (free lanes help nobody). A pool
	// degraded by faults below the active-core count instead publishes
	// exactly the floor (one granule per active tenant, time-shared); the
	// same shortage without faults keeps the strict first-come budget.
	switch {
	case active == 0:
		if sum != 0 {
			return "lanes granted with no active core"
		}
	case usable >= active || failed == 0:
		if sum != usable {
			return "usable pool not fully distributed"
		}
	default:
		if sum != active {
			return "degraded pool must publish exactly the floor"
		}
	}
	return ""
}

// TestRepartitionProperty drives Manager.Repartition across randomized core
// counts, <OI> registers and failure masks, asserting the full invariant set:
// decisions conserve the pool, respect the fairness floor, fit the usable
// ExeBUs, and starve only inactive cores.
func TestRepartitionProperty(t *testing.T) {
	mdl := roofline.Default()
	f := func(spec []byte, totSeed, failSeed uint8) bool {
		if len(spec) == 0 {
			spec = []byte{1}
		}
		if len(spec) > 16 {
			spec = spec[:16]
		}
		total := int(totSeed%31) + 1
		tbl := newTbl(len(spec), total)
		mgr := NewManager(mdl, tbl)
		failed := tbl.Fail(int(failSeed) % (total + 1))
		ois := decodeOIs(spec)
		for c, oi := range ois {
			tbl.SetOI(c, oi)
		}
		mgr.Repartition()
		dec := make([]int, tbl.Cores())
		for c := range dec {
			dec[c] = tbl.Decision(c)
		}
		if msg := checkPartition(ois, dec, tbl.Usable(), failed); msg != "" {
			t.Logf("spec=%v total=%d failed=%d dec=%v: %s", spec, total, failed, dec, msg)
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestRepartitionPropertyAfterRepair extends the mask walk over time: fail,
// replan, repair, replan — the invariants must hold at every step, and a full
// repair must restore the fault-free distribution exactly.
func TestRepartitionPropertyAfterRepair(t *testing.T) {
	mdl := roofline.Default()
	f := func(spec []byte, totSeed, failSeed uint8) bool {
		if len(spec) == 0 || len(spec) > 12 {
			spec = []byte{7, 0, 200}
		}
		total := int(totSeed%15) + 1
		tbl := newTbl(len(spec), total)
		mgr := NewManager(mdl, tbl)
		ois := decodeOIs(spec)
		for c, oi := range ois {
			tbl.SetOI(c, oi)
		}
		mgr.Repartition()
		ref := make([]int, tbl.Cores())
		for c := range ref {
			ref[c] = tbl.Decision(c)
		}
		failed := tbl.Fail(int(failSeed) % (total + 1))
		mgr.Repartition()
		dec := make([]int, tbl.Cores())
		for c := range dec {
			dec[c] = tbl.Decision(c)
		}
		if msg := checkPartition(ois, dec, tbl.Usable(), failed); msg != "" {
			t.Logf("degraded: %s", msg)
			return false
		}
		tbl.Repair(failed)
		mgr.Repartition()
		for c := range ref {
			if tbl.Decision(c) != ref[c] {
				t.Logf("repair did not restore decision[%d]: %d != %d", c, tbl.Decision(c), ref[c])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// FuzzPlan is the coverage-guided variant: arbitrary byte specs become core
// populations, pool sizes and failure masks, and the Plan invariants must
// hold for every input the fuzzer discovers.
func FuzzPlan(f *testing.F) {
	f.Add([]byte{1, 0, 255, 128}, uint8(8), uint8(0))
	f.Add([]byte{3, 3, 3, 3, 3, 3, 3, 3, 3}, uint8(4), uint8(2))
	f.Add([]byte{0, 0}, uint8(1), uint8(1))
	f.Add([]byte{200}, uint8(31), uint8(30))
	mdl := roofline.Default()
	f.Fuzz(func(t *testing.T, spec []byte, totSeed, failSeed uint8) {
		if len(spec) == 0 || len(spec) > 64 {
			t.Skip()
		}
		total := int(totSeed%63) + 1
		ois := decodeOIs(spec)
		usable := total - int(failSeed)%(total+1)
		plan := Plan(mdl, ois, usable)
		sum, active := 0, 0
		for c, vl := range plan {
			if vl < 0 {
				t.Fatalf("negative allocation %d for core %d", vl, c)
			}
			if ois[c].IsZero() && vl != 0 {
				t.Fatalf("inactive core %d allocated %d granules", c, vl)
			}
			if !ois[c].IsZero() {
				active++
			}
			sum += vl
		}
		if sum > usable {
			t.Fatalf("plan %v oversubscribes the pool: %d > %d", plan, sum, usable)
		}
		if active <= usable {
			for c, vl := range plan {
				if !ois[c].IsZero() && vl < 1 {
					t.Fatalf("fairness floor violated for core %d in %v", c, plan)
				}
			}
		}
	})
}
