package lanemgr

import "fmt"

// Hier is the global level of the two-level lane hierarchy: one Manager per
// co-processor cluster (each running the unchanged §5.2 per-cluster pass
// over its own ExeBU shard) under a balancing pass that owns the core→cluster
// assignment and proposes tenant migrations when the clusters' loads diverge.
//
// Balance is deterministic and O(clusters + cores), and it only *proposes* a
// migration: moving a tenant's architectural vector state between clusters
// must happen at a drained strip boundary, so the proposal is surfaced
// through OnMigrate and completed later (CompleteMigration) by whoever owns
// the data path — internal/coproc's Complex in the simulator.
type Hier struct {
	Topo Topology
	// Mgrs holds one per-cluster Manager, indexed by cluster.
	Mgrs []*Manager
	// Assign maps each core to its home cluster.
	Assign []int
	// Threshold is the minimum active-tenant imbalance (max cluster minus
	// min cluster) that justifies a migration; below it the clusters are
	// considered balanced. DefaultThreshold when zero-built via NewHier.
	Threshold int
	// Migrations counts completed tenant migrations.
	Migrations uint64
	// OnMigrate, when non-nil, receives a migration proposal (core, from,
	// to) and reports whether it was accepted. A rejection (e.g. the core
	// already has a migration in flight) leaves the assignment untouched;
	// Balance does not retry within the same pass.
	OnMigrate func(core, from, to int) bool

	active    []int // per-cluster active-tenant scratch (no alloc in Balance)
	balancing bool  // re-entrancy guard: Balance can trigger repartitions
}

// DefaultThreshold is the migration hysteresis: one tenant of imbalance is
// tolerated (a migration costs a full drain), two is acted on.
const DefaultThreshold = 2

// NewHier builds the hierarchy over per-cluster managers. Every core starts
// on its natural group cluster: core c is assigned to cluster
// c / (Cores/Clusters) so contiguous core groups share a cluster.
func NewHier(topo Topology, mgrs []*Manager) *Hier {
	if err := topo.Validate(); err != nil {
		panic(err)
	}
	if len(mgrs) != topo.Clusters {
		panic(fmt.Sprintf("lanemgr: %d managers for %d clusters", len(mgrs), topo.Clusters))
	}
	h := &Hier{
		Topo:      topo,
		Mgrs:      mgrs,
		Assign:    make([]int, topo.Cores),
		Threshold: DefaultThreshold,
		active:    make([]int, topo.Clusters),
	}
	group := topo.Cores / topo.Clusters
	if group < 1 {
		group = 1
	}
	for c := range h.Assign {
		k := c / group
		if k >= topo.Clusters {
			k = topo.Clusters - 1
		}
		h.Assign[c] = k
	}
	return h
}

// Home returns core c's current cluster.
func (h *Hier) Home(c int) int { return h.Assign[c] }

// Repartition runs the per-cluster pass on cluster k (the two-level split of
// the old flat Manager.Repartition: this level, then Balance via the hook).
func (h *Hier) Repartition(k int) { h.Mgrs[k].Repartition() }

// Balance is the global pass. It counts active tenants (cores with a nonzero
// <OI> on their home shard) per cluster, compares cluster loads as
// active/usable fractions (integer cross-multiplication — exact, and robust
// to shards degraded by faults), and when the most and least loaded clusters
// differ by at least Threshold tenants it proposes migrating the source
// cluster's smallest-decision tenant to the destination. Deterministic: ties
// break toward the lowest cluster / core index.
func (h *Hier) Balance() {
	if h.balancing || h.Topo.Clusters < 2 || h.OnMigrate == nil {
		return
	}
	h.balancing = true
	defer func() { h.balancing = false }()

	for k := range h.active {
		h.active[k] = 0
	}
	for c, k := range h.Assign {
		if !h.Mgrs[k].Tbl.OI(c).IsZero() {
			h.active[k]++
		}
	}
	src, dst := 0, 0
	for k := 1; k < h.Topo.Clusters; k++ {
		// load(k) > load(src)  <=>  active[k]*usable[src] > active[src]*usable[k]
		if h.active[k]*h.Mgrs[src].Tbl.Usable() > h.active[src]*h.Mgrs[k].Tbl.Usable() {
			src = k
		}
		if h.active[k]*h.Mgrs[dst].Tbl.Usable() < h.active[dst]*h.Mgrs[k].Tbl.Usable() {
			dst = k
		}
	}
	if src == dst || h.active[src]-h.active[dst] < h.Threshold {
		return
	}
	// Victim: the source cluster's active tenant with the smallest
	// <decision> — the cheapest partition to uproot — lowest core index on
	// ties.
	victim, best := -1, 0
	tbl := h.Mgrs[src].Tbl
	for c, k := range h.Assign {
		if k != src || tbl.OI(c).IsZero() {
			continue
		}
		if d := tbl.Decision(c); victim < 0 || d < best {
			victim, best = c, d
		}
	}
	if victim < 0 {
		return
	}
	h.OnMigrate(victim, src, dst)
}

// CompleteMigration records that core c now lives on cluster `to`: the data
// path has drained the old allocation and moved the vector state. The caller
// is responsible for the shard bookkeeping (release on the old shard,
// re-admission on the new one).
func (h *Hier) CompleteMigration(c, to int) {
	h.Assign[c] = to
	h.Migrations++
}

// HierState checkpoints the assignment and migration counter (the shards
// snapshot themselves through their tables).
type HierState struct {
	assign     []int
	migrations uint64
}

// Snapshot captures the hierarchy's global state.
func (h *Hier) Snapshot() HierState {
	return HierState{assign: append([]int(nil), h.Assign...), migrations: h.Migrations}
}

// Restore rewinds to a Snapshot taken on a same-shaped hierarchy.
func (h *Hier) Restore(st HierState) {
	copy(h.Assign, st.assign)
	h.Migrations = st.migrations
}
