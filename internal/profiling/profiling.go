// Package profiling wires Go's runtime profilers into the command-line
// tools (occamy-sim, occamy-bench): CPU profiles, heap profiles and a
// one-line allocation report for eyeballing the hot path's GC behaviour
// without a profile viewer. The simulator's steady state is allocation-free
// by contract (internal/arch TestSteadyStateZeroAlloc); these hooks are how
// that contract was established and how regressions are chased down.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Session owns the running profilers; Stop flushes and closes them.
type Session struct {
	cpuFile *os.File
	memPath string
	before  runtime.MemStats
	allocs  bool
}

// Start begins the requested profilers. cpuPath/memPath name output files
// ("" disables each); allocs arms the Stop-time allocation report. The
// returned Session is never nil; call Stop exactly once when the measured
// work is done.
func Start(cpuPath, memPath string, allocs bool) (*Session, error) {
	s := &Session{memPath: memPath, allocs: allocs}
	if allocs {
		runtime.ReadMemStats(&s.before)
	}
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		s.cpuFile = f
	}
	return s, nil
}

// Stop ends the CPU profile, writes the heap profile and prints the
// allocation report (to stderr, so it composes with redirected reports).
func (s *Session) Stop() error {
	if s.cpuFile != nil {
		pprof.StopCPUProfile()
		if err := s.cpuFile.Close(); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		s.cpuFile = nil
	}
	if s.memPath != "" {
		f, err := os.Create(s.memPath)
		if err != nil {
			return fmt.Errorf("memprofile: %w", err)
		}
		runtime.GC() // materialize a settled heap before the snapshot
		if err := pprof.WriteHeapProfile(f); err != nil {
			f.Close()
			return fmt.Errorf("memprofile: %w", err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("memprofile: %w", err)
		}
	}
	if s.allocs {
		var after runtime.MemStats
		runtime.ReadMemStats(&after)
		fmt.Fprintf(os.Stderr,
			"allocs: %d objects, %.1f MB allocated, %d GC cycles\n",
			after.Mallocs-s.before.Mallocs,
			float64(after.TotalAlloc-s.before.TotalAlloc)/(1<<20),
			after.NumGC-s.before.NumGC)
	}
	return nil
}
