package roofline

import (
	"math"
	"testing"
	"testing/quick"

	"occamy/internal/isa"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// TestTable5_WL8p1 reproduces Table 5 of the paper: attainable performance
// (GFLOP/s) for WL8.p1 (oi_issue=0.17, oi_mem=0.25) at VL = 4..32 lanes
// (1..8 granules). Published rows:
//
//	VL(lanes)        4     8     12    16    20/24/28/32
//	SIMDIssueBound   5.3   10.7  16    21.3  26.7/32/37.3/42.7
//	MemBound         16    16    16    16    16
//	CompBound        8     16    24    32    40/48/56/64
//	Performance      5.3   10.7  16    16    16
func TestTable5_WL8p1(t *testing.T) {
	m := Default()
	oi := isa.OIPair{Issue: 1.0 / 6.0, Mem: 0.25} // 0.17 / 0.25 as published (rounded)

	wantIssue := []float64{5.3, 10.7, 16, 21.3, 26.7, 32, 37.3, 42.7}
	wantComp := []float64{8, 16, 24, 32, 40, 48, 56, 64}
	wantPerf := []float64{5.3, 10.7, 16, 16, 16, 16, 16, 16}
	for g := 1; g <= 8; g++ {
		if got := m.IssueBW(g) * oi.Issue; !approx(got, wantIssue[g-1], 0.15) {
			t.Errorf("vl=%d lanes: issue bound = %.2f, want %.1f", 4*g, got, wantIssue[g-1])
		}
		if got := m.MemBW() * oi.Mem; !approx(got, 16, 1e-9) {
			t.Errorf("vl=%d lanes: mem bound = %.2f, want 16", 4*g, got)
		}
		if got := m.FPPeak(g); !approx(got, wantComp[g-1], 1e-9) {
			t.Errorf("vl=%d lanes: comp bound = %.2f, want %.1f", 4*g, got, wantComp[g-1])
		}
		if got := m.Attainable(g, oi); !approx(got, wantPerf[g-1], 0.15) {
			t.Errorf("vl=%d lanes: attainable = %.2f, want %.1f", 4*g, got, wantPerf[g-1])
		}
	}
}

// TestCase4_IssueBoundAllocation checks the §7.4 Case 4 observation: for
// WL8.p1 the allocation is bounded by instruction issue below 12 lanes, so
// the saturation point is 3 granules (12 lanes) — not the 2 granules that a
// roofline without the issue ceiling would pick.
func TestCase4_IssueBoundAllocation(t *testing.T) {
	m := Default()
	oi := isa.OIPair{Issue: 1.0 / 6.0, Mem: 0.25}
	if got := m.SaturationVL(oi, 8); got != 3 {
		t.Errorf("saturation VL = %d granules, want 3 (12 lanes)", got)
	}
	// Without the issue ceiling (issue width so large it never binds),
	// the knee moves to 2 granules: 8 lanes, the memory-only answer.
	m.IssueUopsPerCycle = 1000
	if got := m.SaturationVL(oi, 8); got != 2 {
		t.Errorf("saturation VL without issue ceiling = %d, want 2 (8 lanes)", got)
	}
}

func TestAttainableZeroCases(t *testing.T) {
	m := Default()
	if m.Attainable(0, isa.OIPair{Issue: 1, Mem: 1}) != 0 {
		t.Error("vl=0 must attain 0")
	}
	if m.Attainable(4, isa.OIPair{}) != 0 {
		t.Error("zero OI (no phase) must attain 0")
	}
	if m.FPPeak(0) != 0 || m.IssueBW(-1) != 0 {
		t.Error("non-positive vl ceilings must be 0")
	}
}

func TestComputeBoundScalesLinearly(t *testing.T) {
	m := Default()
	oi := isa.OIPair{Issue: 100, Mem: 100} // effectively compute-bound
	for g := 1; g <= 8; g++ {
		if got := m.Attainable(g, oi); !approx(got, m.FPPeak(g), 1e-9) {
			t.Errorf("compute-bound attainable at %d granules = %v, want FP peak %v", g, got, m.FPPeak(g))
		}
	}
	if m.SaturationVL(oi, 8) != 8 {
		t.Error("compute-bound phase must scale to the maximum")
	}
}

func TestMemoryBoundSaturates(t *testing.T) {
	m := Default()
	oi := isa.OIPair{Issue: 0.1, Mem: 0.1} // memory/issue bound early
	sat := m.SaturationVL(oi, 8)
	if sat >= 8 {
		t.Fatalf("memory-bound phase must saturate before max, got %d", sat)
	}
	// Past the knee, more granules add nothing.
	if m.Attainable(sat, oi) != m.Attainable(8, oi) {
		t.Error("attainable must be flat past the saturation point")
	}
}

func TestAttainableMonotoneNonDecreasingInVL(t *testing.T) {
	m := Default()
	f := func(a, b uint16, g uint8) bool {
		oi := isa.OIPair{Issue: float64(a%1000)/256 + 0.01, Mem: float64(b%1000)/256 + 0.01}
		vl := int(g%7) + 1
		return m.Attainable(vl+1, oi) >= m.Attainable(vl, oi)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNetGainNeverNegative(t *testing.T) {
	m := Default()
	f := func(a, b uint16, g uint8) bool {
		oi := isa.OIPair{Issue: float64(a%2000) / 256, Mem: float64(b%2000) / 256}
		vl := int(g % 10)
		return m.NetGain(vl, oi) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNetGainDiminishes(t *testing.T) {
	// The ceilings are concave, so marginal gain must be non-increasing in
	// vl — this is what makes the greedy partitioner optimal per-step.
	m := Default()
	f := func(a, b uint16, g uint8) bool {
		oi := isa.OIPair{Issue: float64(a%1000) / 256, Mem: float64(b%1000) / 256}
		vl := int(g%8) + 1
		return m.NetGain(vl, oi) <= m.NetGain(vl-1, oi)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestL2CeilingSelection(t *testing.T) {
	m := Default()
	if m.MemBW() != m.DRAMBWGBs {
		t.Error("default memory ceiling must be DRAM")
	}
	m.UseL2Ceiling = true
	if m.MemBW() != m.L2BWGBs {
		t.Error("UseL2Ceiling must select the L2 bandwidth")
	}
	if m.L2BWGBs <= m.DRAMBWGBs {
		t.Error("hierarchical roofline requires L2 BW > DRAM BW")
	}
}

func TestDefaultMatchesFigure7IssueBandwidthStatement(t *testing.T) {
	// §5.1: "the SIMD issue bandwidth (32B/cycle when vl = 1)".
	m := Default()
	bytesPerCycle := m.IssueBW(1) / m.ClockGHz
	if bytesPerCycle != 32 {
		t.Errorf("issue bandwidth at vl=1 = %v B/cycle, want 32", bytesPerCycle)
	}
}
