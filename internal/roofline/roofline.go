// Package roofline implements the vector-length-aware roofline model of §5.1:
// the classic roofline extended with per-vector-length computation ceilings
// and the paper's novel SIMD-issue-bandwidth ceiling (Eq. 2), combined into
// the attainable-performance estimate AP_l(<OI>) of Eq. 4 that the hardware
// lane manager uses to value an extra ExeBU.
//
// Vector lengths are expressed in 128-bit granules (ExeBUs); one granule is
// four 32-bit lanes. The default model constants reproduce Table 5 of the
// paper exactly (see TestTable5_WL8p1).
package roofline

import "occamy/internal/isa"

// Model holds the architecture-specific ceilings. Performance values are in
// GFLOP/s and bandwidths in GB/s, matching the paper's units.
type Model struct {
	// ClockGHz converts per-cycle capabilities into rates. The paper's
	// Table 5 numbers normalize to 1.0 (its CompBound of 8 GFLOP/s at 16
	// lanes only follows from 2 FLOPs/lane/cycle at 1 GHz); keep that
	// normalization for comparability — only ratios matter to the
	// partitioning algorithm.
	ClockGHz float64
	// FlopsPerGranulePerCycle is the compute-ceiling slope: each ExeBU
	// has two 128-bit pipes of four lanes each executing one FLOP per
	// cycle (Figure 5), i.e. 8 FLOPs per granule per cycle.
	FlopsPerGranulePerCycle float64
	// IssueUopsPerCycle is the number of vector-memory micro-ops the
	// dispatcher can send to the LSU per cycle (Eq. 2 uses 2).
	IssueUopsPerCycle float64
	// L2BWGBs and DRAMBWGBs are the hierarchical memory-bandwidth
	// ceilings of Figure 7(a).
	L2BWGBs   float64
	DRAMBWGBs float64
	// UseL2Ceiling selects which memory ceiling Eq. 4 applies; the lane
	// manager uses the DRAM ceiling by default because co-run workload
	// footprints exceed the vector cache.
	UseL2Ceiling bool
}

// Default returns the model calibrated to Table 4/Table 5.
func Default() Model {
	return Model{
		ClockGHz:                1.0,
		FlopsPerGranulePerCycle: 8,
		IssueUopsPerCycle:       2,
		L2BWGBs:                 128, // 64 B/cycle at 2 GHz
		DRAMBWGBs:               64,
	}
}

// FPPeak returns the computation ceiling for vl granules in GFLOP/s
// (the "FP peak (vl)" horizontal lines of Figure 7(a)).
func (m Model) FPPeak(vl int) float64 {
	if vl <= 0 {
		return 0
	}
	return m.FlopsPerGranulePerCycle * float64(vl) * m.ClockGHz
}

// IssueBW returns the SIMD-issue-bandwidth ceiling of Eq. 2 for vl granules,
// in GB/s: IssueUopsPerCycle * vl * 16 bytes per cycle.
func (m Model) IssueBW(vl int) float64 {
	if vl <= 0 {
		return 0
	}
	return m.IssueUopsPerCycle * float64(vl) * isa.GranuleBytes * m.ClockGHz
}

// MemBW returns the selected memory-bandwidth ceiling in GB/s.
func (m Model) MemBW() float64 {
	if m.UseL2Ceiling {
		return m.L2BWGBs
	}
	return m.DRAMBWGBs
}

// Attainable returns AP_vl(<OI>) of Eq. 4: the minimum of the computation
// ceiling, the issue-bandwidth ceiling scaled by <OI>.issue, and the memory
// ceiling scaled by <OI>.mem. A zero OI pair (no active phase) attains zero.
func (m Model) Attainable(vl int, oi isa.OIPair) float64 {
	if vl <= 0 || oi.IsZero() {
		return 0
	}
	ap := m.FPPeak(vl)
	if v := m.IssueBW(vl) * oi.Issue; v < ap {
		ap = v
	}
	if v := m.MemBW() * oi.Mem; v < ap {
		ap = v
	}
	return ap
}

// NetGain returns Eq. 3: the marginal performance of granting one more ExeBU
// at the current allocation, AP_{vl+1}(<OI>) - AP_{vl}(<OI>).
func (m Model) NetGain(vl int, oi isa.OIPair) float64 {
	return m.Attainable(vl+1, oi) - m.Attainable(vl, oi)
}

// SaturationVL returns the smallest vector length (in granules, at most max)
// beyond which a phase with the given OI gains no further performance — the
// "knee" visible in Figure 14(a). It returns max if the phase scales all the
// way (compute-bound).
func (m Model) SaturationVL(oi isa.OIPair, max int) int {
	for vl := 1; vl < max; vl++ {
		if m.NetGain(vl, oi) <= 0 {
			return vl
		}
	}
	return max
}
