package traffic

import (
	"strings"
	"testing"

	"occamy/internal/arch"
	"occamy/internal/telemetry"
)

func telemetryScenario(t *testing.T, kind arch.Kind, seed uint64) *Scenario {
	t.Helper()
	spec, err := ParseSpec("poisson:load=6,tenants=3,cores=2,horizon=12000,slice=400,elems=96,repeats=1,churn=800:1200,maxtasks=2048")
	if err != nil {
		t.Fatal(err)
	}
	sc, err := Build(kind, spec, arch.Options{
		Seed:      seed,
		Telemetry: &telemetry.Config{Window: 1000},
	})
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

// TestTelemetryTrafficWindows: a traffic run with telemetry enabled produces
// windows whose traffic slices conserve flow (per-window deltas sum to the
// cumulative counters) and whose quantiles are sane.
func TestTelemetryTrafficWindows(t *testing.T) {
	sc := telemetryScenario(t, arch.Occamy, 101)
	if err := sc.Run(sc.DefaultBudget()); err != nil {
		t.Fatal(err)
	}
	sc.Sys.Tele.Flush(sc.Sys.Engine.Cycle())

	v := sc.Sys.Tele.View()
	if !v.HasTraffic {
		t.Fatal("traffic scenario with telemetry: View.HasTraffic false")
	}
	if v.TrafficArrived == 0 || v.TrafficCompleted == 0 {
		t.Fatalf("no flow reached telemetry: %+v", v)
	}
	if v.TrafficArrived > sc.Src.Arrived() {
		t.Fatalf("cumulative arrived %d exceeds source %d", v.TrafficArrived, sc.Src.Arrived())
	}

	var sumArr, sumCom, sojourns uint64
	var w telemetry.Window
	for i := 0; i < sc.Sys.Tele.Retained(); i++ {
		if !sc.Sys.Tele.CopyWindow(i, &w) {
			continue
		}
		if !w.HasTraffic {
			t.Fatalf("window %d missing traffic slice", i)
		}
		sumArr += w.Traffic.Arrived
		sumCom += w.Traffic.Completed
		sojourns += w.Traffic.SojournCount
		if w.Traffic.SojournCount > 0 && w.Traffic.SojournP99 < w.Traffic.SojournP50 {
			t.Fatalf("window %d: p99 %g < p50 %g", i, w.Traffic.SojournP99, w.Traffic.SojournP50)
		}
	}
	if sumArr != v.TrafficArrived || sumCom != v.TrafficCompleted {
		t.Fatalf("window deltas don't conserve: arrived %d/%d completed %d/%d",
			sumArr, v.TrafficArrived, sumCom, v.TrafficCompleted)
	}
	if sojourns == 0 {
		t.Fatal("no sojourn samples in any window")
	}
}

// TestTelemetryTrafficOpenMetrics: the traffic families render, carry
// samples, and the output still satisfies the OpenMetrics contract.
func TestTelemetryTrafficOpenMetrics(t *testing.T) {
	sc := telemetryScenario(t, arch.VLS, 202)
	if err := sc.Run(sc.DefaultBudget()); err != nil {
		t.Fatal(err)
	}
	sc.Sys.Tele.Flush(sc.Sys.Engine.Cycle())

	var sb strings.Builder
	if err := sc.Sys.Tele.WriteOpenMetrics(&sb, "traffic-test"); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE occamy_traffic_arrived counter",
		"occamy_traffic_arrived_total{run=\"traffic-test\"}",
		"occamy_traffic_admitted_total{run=\"traffic-test\"}",
		"occamy_traffic_completed_total{run=\"traffic-test\"}",
		"occamy_traffic_sojourn_cycles{run=\"traffic-test\",quantile=\"0.99\"}",
		"occamy_traffic_admit_wait_cycles{run=\"traffic-test\",quantile=\"0.5\"}",
		"occamy_traffic_queued{run=\"traffic-test\"}",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("OpenMetrics output missing %q", want)
		}
	}
	if err := telemetry.ValidateOpenMetrics(strings.NewReader(out)); err != nil {
		t.Fatal(err)
	}
}

// TestTelemetryTrafficDigestDeterminism: two identical traffic+telemetry
// runs hash identically, and a different seed hashes differently — the
// traffic slice is inside the digest, deterministically.
func TestTelemetryTrafficDigestDeterminism(t *testing.T) {
	digest := func(seed uint64) uint64 {
		sc := telemetryScenario(t, arch.Occamy, seed)
		if err := sc.Run(sc.DefaultBudget()); err != nil {
			t.Fatal(err)
		}
		sc.Sys.Tele.Flush(sc.Sys.Engine.Cycle())
		return sc.Sys.Tele.Digest()
	}
	a, b := digest(77), digest(77)
	if a != b {
		t.Fatalf("same seed, different digests: %x vs %x", a, b)
	}
	if c := digest(78); c == a {
		t.Fatalf("different seed produced identical digest %x", c)
	}
}
