package traffic

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// SLOThresholdsX are the SLO-attainment curve points, as multiples of the
// estimated mean service time: "completed within k× its own service
// demand". The curve reads as a latency CDF sampled at operationally
// meaningful points.
var SLOThresholdsX = []float64{1, 2, 4, 8, 16, 32}

// TenantSLO is one tenant's (or the aggregate's) service-level outcome.
type TenantSLO struct {
	Tenant     int // -1 for the aggregate
	Arrivals   int
	Admitted   int
	Completed  int
	Canceled   int
	Incomplete int // still queued/running/suspended at stop

	// Sojourn is arrival→completion latency over completed tasks;
	// AdmitWait is arrival→first-dispatch over admitted tasks. Cycles.
	SojournP50, SojournP99 uint64
	AdmitP50, AdmitP99     uint64

	// Attainment[i] is the fraction of all arrivals (canceled and
	// incomplete count as misses — the honest open-loop view) completed
	// within SLOThresholdsX[i] × ServiceEst cycles.
	Attainment []float64

	// FairChance counts never-canceled arrivals in the first half of the
	// horizon — the evidence Starved requires before calling a tenant
	// starved, so late-arriving work cut off by a non-drain stop is not
	// mistaken for starvation.
	FairChance int
}

// Report is the per-tenant SLO outcome of one traffic run.
type Report struct {
	Arch       string
	Spec       Spec
	Cycles     uint64 // engine cycle at stop
	Switches   uint64
	ServiceEst float64
	Truncated  int
	Verified   int

	Tenants []TenantSLO
	Total   TenantSLO

	// Digest is the Source's FNV-64a outcome digest (determinism suite).
	Digest uint64
}

// BuildReport assembles the SLO report from the finished scenario's
// records. Report-time allocation is fine; only the tick path is bound by
// the zero-alloc contract.
func (sc *Scenario) BuildReport() *Report {
	src, tr := sc.Src, sc.Trace
	r := &Report{
		Arch:       sc.Kind.String(),
		Spec:       sc.Spec,
		Cycles:     sc.Sys.Engine.Cycle(),
		Switches:   sc.Sched.Switches,
		ServiceEst: tr.ServiceEst,
		Truncated:  tr.Truncated,
		Digest:     src.Digest(),
	}
	arrived := src.ai // arrivals actually injected before stop
	perTenant := make([][]int, sc.Spec.Tenants)
	for i := 0; i < arrived; i++ {
		t := int(src.tenantOf[i])
		perTenant[t] = append(perTenant[t], i)
	}
	all := make([]int, arrived)
	for i := range all {
		all[i] = i
	}
	r.Total = sc.slo(-1, all)
	for t := 0; t < sc.Spec.Tenants; t++ {
		r.Tenants = append(r.Tenants, sc.slo(t, perTenant[t]))
	}
	return r
}

func (sc *Scenario) slo(tenant int, ids []int) TenantSLO {
	src, tr := sc.Src, sc.Trace
	out := TenantSLO{Tenant: tenant, Arrivals: len(ids)}
	var sojourns, waits []uint64
	within := make([]int, len(SLOThresholdsX))
	for _, i := range ids {
		if tr.Arrivals[i].Cycle < sc.Spec.Horizon/2 && !src.canceled[i] {
			out.FairChance++
		}
		switch {
		case src.completed[i]:
			out.Completed++
			d := src.completeCycle[i] - tr.Arrivals[i].Cycle
			sojourns = append(sojourns, d)
			for k, x := range SLOThresholdsX {
				if float64(d) <= x*tr.ServiceEst {
					within[k]++
				}
			}
		case src.canceled[i]:
			out.Canceled++
		default:
			out.Incomplete++
		}
		if src.admitted[i] {
			out.Admitted++
			waits = append(waits, src.admitCycle[i]-tr.Arrivals[i].Cycle)
		}
	}
	out.SojournP50, out.SojournP99 = pctl(sojourns, 0.50), pctl(sojourns, 0.99)
	out.AdmitP50, out.AdmitP99 = pctl(waits, 0.50), pctl(waits, 0.99)
	out.Attainment = make([]float64, len(SLOThresholdsX))
	if len(ids) > 0 {
		for k := range within {
			out.Attainment[k] = float64(within[k]) / float64(len(ids))
		}
	}
	return out
}

// ReportVerified verifies every completed task's functional results and
// returns the report with the verified count filled in.
func (sc *Scenario) ReportVerified(tol float64) (*Report, error) {
	n, err := sc.VerifyCompleted(tol)
	if err != nil {
		return nil, err
	}
	rep := sc.BuildReport()
	rep.Verified = n
	return rep, nil
}

// pctl is the exact nearest-rank percentile of xs (computed on a sorted
// copy): the smallest sample with at least ⌈q·n⌉ samples at or below it;
// 0 when empty.
func pctl(xs []uint64, q float64) uint64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]uint64(nil), xs...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(math.Ceil(q*float64(len(s)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}

// Conservation checks the SLO report's accounting invariants: every arrival
// is exactly one of completed/canceled/incomplete, ordering holds per task
// (arrive ≤ admit ≤ complete), counters match flags, and histogram mass
// matches counters. A violation means the engine lost or double-counted a
// task — the CI traffic smoke job exits nonzero on it.
func (r *Report) Conservation() error {
	t := r.Total
	if t.Completed+t.Canceled+t.Incomplete != t.Arrivals {
		return fmt.Errorf("traffic: conservation: %d completed + %d canceled + %d incomplete != %d arrivals",
			t.Completed, t.Canceled, t.Incomplete, t.Arrivals)
	}
	if t.Completed > t.Admitted {
		return fmt.Errorf("traffic: conservation: completed %d > admitted %d", t.Completed, t.Admitted)
	}
	if t.Admitted > t.Arrivals {
		return fmt.Errorf("traffic: conservation: admitted %d > arrivals %d", t.Admitted, t.Arrivals)
	}
	var sumA, sumC, sumX, sumAd int
	for _, ten := range r.Tenants {
		sumA += ten.Arrivals
		sumC += ten.Completed
		sumX += ten.Canceled
		sumAd += ten.Admitted
	}
	if sumA != t.Arrivals || sumC != t.Completed || sumX != t.Canceled || sumAd != t.Admitted {
		return fmt.Errorf("traffic: conservation: tenant sums (%d/%d/%d/%d) != totals (%d/%d/%d/%d)",
			sumA, sumC, sumX, sumAd, t.Arrivals, t.Completed, t.Canceled, t.Admitted)
	}
	return nil
}

// ConservationDeep re-derives the per-task invariants from the raw records
// (used by tests; Conservation covers the aggregated report).
func (sc *Scenario) ConservationDeep() error {
	src, tr := sc.Src, sc.Trace
	for i := 0; i < src.ai; i++ {
		if src.completed[i] && src.canceled[i] {
			return fmt.Errorf("traffic: task %d both completed and canceled", i)
		}
		if src.completed[i] && !src.admitted[i] {
			return fmt.Errorf("traffic: task %d completed without admission", i)
		}
		if src.admitted[i] && src.admitCycle[i] < tr.Arrivals[i].Cycle {
			return fmt.Errorf("traffic: task %d admitted at %d before arrival %d", i, src.admitCycle[i], tr.Arrivals[i].Cycle)
		}
		if src.completed[i] && src.completeCycle[i] < src.admitCycle[i] {
			return fmt.Errorf("traffic: task %d completed at %d before admission %d", i, src.completeCycle[i], src.admitCycle[i])
		}
	}
	var bins, abins uint64
	for _, c := range src.sojournBins {
		bins += c
	}
	for _, c := range src.admitBins {
		abins += c
	}
	if bins != src.nCompleted {
		return fmt.Errorf("traffic: sojourn histogram mass %d != completed %d", bins, src.nCompleted)
	}
	if abins != src.nAdmitted {
		return fmt.Errorf("traffic: admit histogram mass %d != admitted %d", abins, src.nAdmitted)
	}
	return nil
}

// Starved returns the tenants that had a fair chance — at least one
// never-canceled arrival in the first half of the horizon (TenantSLO.
// FairChance > 0) — but completed nothing. An empty slice means the
// fairness floor held.
func (r *Report) Starved() []int {
	var out []int
	for _, ten := range r.Tenants {
		if ten.Completed == 0 && ten.FairChance > 0 {
			out = append(out, ten.Tenant)
		}
	}
	return out
}

// Summary renders the per-tenant SLO table.
func (r *Report) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "traffic %s on %s: load %.2gx, %d tenants, %d cores, %d cycles, %d switches\n",
		r.Spec.Process, r.Arch, r.Spec.Load, r.Spec.Tenants, r.Spec.Cores, r.Cycles, r.Switches)
	fmt.Fprintf(&b, "service est %.0f cycles/task; %d arrivals (%d truncated), %d verified OK\n",
		r.ServiceEst, r.Total.Arrivals, r.Truncated, r.Verified)
	fmt.Fprintf(&b, "%-7s %8s %8s %8s %8s %10s %10s %10s %10s %s\n",
		"tenant", "arrive", "done", "cancel", "incompl", "p50", "p99", "admit p50", "admit p99", "SLO@2x/8x/32x")
	row := func(s TenantSLO, name string) {
		att := "-"
		if len(s.Attainment) >= 6 {
			att = fmt.Sprintf("%.2f/%.2f/%.2f", s.Attainment[1], s.Attainment[3], s.Attainment[5])
		}
		fmt.Fprintf(&b, "%-7s %8d %8d %8d %8d %10d %10d %10d %10d %s\n",
			name, s.Arrivals, s.Completed, s.Canceled, s.Incomplete,
			s.SojournP50, s.SojournP99, s.AdmitP50, s.AdmitP99, att)
	}
	for _, ten := range r.Tenants {
		row(ten, fmt.Sprintf("t%d", ten.Tenant))
	}
	row(r.Total, "all")
	return b.String()
}
