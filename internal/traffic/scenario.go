package traffic

import (
	"fmt"

	"occamy/internal/arch"
	"occamy/internal/compiler"
	"occamy/internal/cpu"
	"occamy/internal/osched"
	"occamy/internal/workload"
)

// Scenario is a built, runnable traffic run: system + scheduler + injector,
// with every arrival's task precompiled into a disjoint data segment.
type Scenario struct {
	Spec  Spec
	Kind  arch.Kind
	Sys   *arch.System
	Sched *osched.Scheduler
	Src   *Source
	Trace *Trace

	compiled []*compiler.Compiled
	names    []string
}

// Build materializes spec on a freshly built system of the given
// architecture. opts.Seed seeds the trace unless spec.Seed overrides; the
// remaining options (faults, telemetry, legacy tick, watchdog) pass through
// to arch.Build unchanged, so every engine feature composes with traffic.
func Build(kind arch.Kind, spec Spec, opts arch.Options) (*Scenario, error) {
	spec.ApplyDefaults()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	tr := Generate(&spec, opts.Seed)
	sys, err := osched.BuildHost(kind, spec.Cores, opts)
	if err != nil {
		return nil, err
	}
	sched := osched.NewScheduler(sys, spec.Slice)
	sc := &Scenario{Spec: spec, Kind: kind, Sys: sys, Sched: sched, Trace: tr}
	reg := workload.NewRegistry()
	for i, a := range tr.Arrivals {
		k := *reg.Kernel(tr.Kernels[a.Kernel])
		k.Elems = int(a.Elems)
		k.Repeats = int(a.Repeats)
		name := fmt.Sprintf("t%d.a%d.%s", a.Tenant, i, k.Name)
		w := &workload.Workload{Name: name, Phases: []*workload.Kernel{&k}}
		comp, err := osched.CompileTask(sys, w, i, opts.Seed)
		if err != nil {
			return nil, err
		}
		sc.compiled = append(sc.compiled, comp)
		sc.names = append(sc.names, name)
		sched.AddTask(name, cpu.NewState(comp.Program))
	}
	src := NewSource(&sc.Spec, tr, sched)
	sc.Src = src
	sys.Tele.WireTraffic(src) // nil-safe: no-op without -telemetry
	// Tick order: injector first, scheduler second, so an arrival is
	// dispatchable the cycle it lands.
	sys.Engine.Register(src)
	sys.Engine.Register(sched)
	osched.ParkCores(sys)
	return sc, nil
}

// Run drives the scenario to its stop condition: drain mode stops when
// every task completed or was canceled; otherwise at the pinned
// Spec.StopCycle (the Source's wake at that cycle keeps the stop
// bit-identical between skip-ahead and legacy ticking). maxCycles is the
// hard safety budget.
func (sc *Scenario) Run(maxCycles uint64) error {
	_, err := sc.Sys.Engine.RunUntil(sc.DonePredicate(), maxCycles)
	return err
}

// DonePredicate returns the stop condition Run evaluates, so sliced drivers
// (sim.Batch tasks) can step the engine through Engine.RunSlice themselves
// and stay bit-identical to an unsliced Run.
func (sc *Scenario) DonePredicate() func() bool {
	if sc.Spec.Drain {
		return sc.Sched.Done
	}
	stop := sc.Spec.StopCycle()
	return func() bool { return sc.Sys.Engine.Cycle() >= stop || sc.Sched.Done() }
}

// DefaultBudget is a generous per-run cycle cap for Run: overload keeps
// queues full past the horizon, but a drain can only serve as long as total
// offered work, bounded by Load.
func (sc *Scenario) DefaultBudget() uint64 {
	mult := uint64(4 + 4*sc.Spec.Load)
	return sc.Spec.Horizon*mult + 2_000_000
}

// VerifyCompleted checks the functional results of every task that ran to
// completion (incomplete, suspended and canceled tasks hold partial output
// by design). Returns the number verified.
func (sc *Scenario) VerifyCompleted(tol float64) (int, error) {
	n := 0
	for i, comp := range sc.compiled {
		if !sc.Src.completed[i] {
			continue
		}
		for p := range comp.Phases {
			if err := comp.Phases[p].CheckResults(sc.Sys.Hier.Mem, tol); err != nil {
				return n, fmt.Errorf("task %d (%s): %v", i, sc.names[i], err)
			}
		}
		n++
	}
	return n, nil
}

// Checkpoint captures the complete scenario — system, scheduler and
// injector — for a bit-identical fork.
type Checkpoint struct {
	Sys   arch.SystemState
	Sched osched.SchedState
	Src   SourceState
}

// Snapshot captures a deterministic full-scenario checkpoint.
func (sc *Scenario) Snapshot() *Checkpoint {
	return &Checkpoint{Sys: *sc.Sys.Checkpoint(), Sched: sc.Sched.Snapshot(), Src: sc.Src.Snapshot()}
}

// RestoreSnapshot reinstalls a checkpoint taken on this scenario. The system
// snapshot's content digest is verified first (see arch.RestoreCheckpoint);
// on an integrity failure nothing — system, scheduler or source — is touched.
func (sc *Scenario) RestoreSnapshot(cp *Checkpoint) error {
	if err := sc.Sys.RestoreCheckpoint(&cp.Sys); err != nil {
		return err
	}
	sc.Sched.Restore(cp.Sched)
	sc.Src.Restore(cp.Src)
	return nil
}
