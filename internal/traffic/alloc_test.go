package traffic

import (
	"testing"

	"occamy/internal/arch"
)

// allocSpec is tuned so every 80-tick measurement window contains real
// traffic work: a dense arrival stream (the load axis saturated, small tasks), a
// short slice so preemptions land in-window, and fast churn so tenant
// exits/re-entries exercise the cancel/suspend/resume paths too.
func allocSpec() Spec {
	s, err := ParseSpec("poisson:load=16,tenants=3,cores=2,horizon=6000,slice=300,elems=128,repeats=1,churn=500:700,maxtasks=4096")
	if err != nil {
		panic(err)
	}
	return s
}

// measureTrafficAllocs mirrors internal/arch's measureSteadyAllocs: warm
// past cycle 2000 (cold-start allocations: first dispatches, first vector
// saves, timeline-bucket growth), then measure 11 windows of 80 real ticks.
// The measured span [2001, 2881) crosses no 1000-cycle timeline-bucket
// boundary, so a nonzero result is genuine per-arrival/per-switch garbage.
func measureTrafficAllocs(t *testing.T, sc *Scenario) float64 {
	t.Helper()
	sc.Sys.Engine.SetSkipAhead(false)
	if _, err := sc.Sys.Engine.RunUntil(func() bool { return sc.Sys.Engine.Cycle() >= 2001 }, 1_000_000); err != nil {
		t.Fatal(err)
	}
	return testing.AllocsPerRun(10, func() {
		for i := 0; i < 80; i++ {
			sc.Sys.Engine.Step()
		}
	})
}

// TestSteadyStateZeroAllocTraffic is the arrival engine's hot-path
// allocation contract: with open-loop arrivals, preemptive scheduling and
// tenant churn all active, the steady-state tick allocates nothing — on
// every architecture. Event rings, task contexts, vector save buffers,
// phase-name pools and latency bins are all preallocated at build time.
func TestSteadyStateZeroAllocTraffic(t *testing.T) {
	for _, kind := range arch.Kinds {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			sc, err := Build(kind, allocSpec(), arch.Options{Seed: 19})
			if err != nil {
				t.Fatal(err)
			}
			if got := measureTrafficAllocs(t, sc); got != 0 {
				t.Fatalf("steady-state traffic tick allocates %.2f allocs per 80-cycle window, want 0", got)
			}
			// The window must have exercised real traffic, not idle ticks.
			if sc.Src.Arrived() < 50 {
				t.Fatalf("only %d arrivals by cycle %d — window under-loaded", sc.Src.Arrived(), sc.Sys.Engine.Cycle())
			}
			if sc.Sched.Switches == 0 {
				t.Fatal("no context switches in the measured span")
			}
		})
	}
}
