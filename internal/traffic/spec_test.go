package traffic

import (
	"strings"
	"testing"
)

// TestSpecRoundTrip: String() emits canonical form and ParseSpec inverts it.
func TestSpecRoundTrip(t *testing.T) {
	for _, in := range []string{
		"poisson",
		"poisson:load=2.5,tenants=6,cores=4,drain",
		"bursty:burst=20,load=0.5,seed=42",
		"diurnal:period=30000,horizon=90000",
		"poisson:mix=dotProd:3+normL2:1,elems=128,repeats=4",
		"poisson:churn=8000:20000,maxtasks=99",
	} {
		s, err := ParseSpec(in)
		if err != nil {
			t.Fatalf("%s: %v", in, err)
		}
		s2, err := ParseSpec(s.String())
		if err != nil {
			t.Fatalf("reparse %q: %v", s.String(), err)
		}
		if !s.Equal(&s2) {
			t.Fatalf("round trip changed spec:\n in: %s\nout: %s", s.String(), s2.String())
		}
	}
}

// TestSpecDefaults: bare process names get the documented defaults.
func TestSpecDefaults(t *testing.T) {
	s, err := ParseSpec("poisson")
	if err != nil {
		t.Fatal(err)
	}
	d := DefaultSpec()
	if !s.Equal(&d) {
		t.Fatalf("ParseSpec(\"poisson\") != DefaultSpec:\n%s\n%s", s.String(), d.String())
	}
	if s.Load != 1.0 || s.Tenants != 4 || s.Cores != 4 || s.MaxTasks != 1024 {
		t.Fatalf("unexpected defaults: %+v", s)
	}
}

// TestSpecRejections: every malformed spec must fail with a diagnostic, not
// build a scenario (occamy.Config.Validate surfaces these verbatim).
func TestSpecRejections(t *testing.T) {
	cases := []struct {
		in, want string
	}{
		{"sinusoid", "unknown process"},
		{"poisson:load=0", "load"},
		{"poisson:load=17", "load"},
		{"poisson:load=abc", "load"},
		{"poisson:tenants=0", "tenants"},
		{"poisson:tenants=300", "tenants"},
		{"poisson:cores=0", "cores"},
		{"poisson:horizon=10", "horizon"},
		{"poisson:slice=5", "slice"},
		{"poisson:elems=1", "elems"},
		{"poisson:repeats=0", "repeats"},
		{"poisson:mix=noSuchKernel:1", "unknown kernel"},
		{"poisson:mix=dotProd:0", "weight"},
		{"poisson:mix=dotProd", "kernel:weight"},
		{"poisson:churn=5000", "off:on"},
		{"poisson:churn=100:100", "churn periods"},
		{"bursty:burst=0.5", "burst"},
		{"diurnal:period=10", "period"},
		{"poisson:maxtasks=0", "maxtasks"},
		{"poisson:maxtasks=9999999", "maxtasks"},
		{"poisson:frobnicate=1", "unknown key"},
		{"poisson:verbose", "bare key"},
	}
	for _, c := range cases {
		if _, err := ParseSpec(c.in); err == nil {
			t.Errorf("%q: accepted, want error containing %q", c.in, c.want)
		} else if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%q: error %q does not mention %q", c.in, err, c.want)
		}
	}
}

// FuzzTrafficSpec is the parser's robustness + canonicalization property:
// ParseSpec must never panic, and any accepted spec must round-trip through
// String() to a semantically equal spec.
func FuzzTrafficSpec(f *testing.F) {
	f.Add("poisson")
	f.Add("poisson:load=2,tenants=6,cores=4,horizon=50000,slice=1500,drain")
	f.Add("bursty:burst=8,load=0.5,churn=8000:20000")
	f.Add("diurnal:period=30000,mix=dotProd:2+wsm51:1,seed=7")
	f.Add("poisson:maxtasks=1,elems=64,repeats=1")
	f.Add("poisson:mix=rho_eos4:9+rgb2hsv:1,churn=500:500")
	f.Add(":::")
	f.Add("poisson:load=-1")
	f.Add("poisson:,,,,")
	f.Add("poisson:mix=+++")
	f.Fuzz(func(t *testing.T, in string) {
		s, err := ParseSpec(in)
		if err != nil {
			return // rejection is fine; panics are not
		}
		canon := s.String()
		s2, err := ParseSpec(canon)
		if err != nil {
			t.Fatalf("canonical form %q of accepted %q rejected: %v", canon, in, err)
		}
		if !s.Equal(&s2) {
			t.Fatalf("round trip changed spec:\n  in: %q\n  canon: %q\n  recanon: %q", in, canon, s2.String())
		}
		if got := s2.String(); got != canon {
			t.Fatalf("String not idempotent: %q vs %q", got, canon)
		}
	})
}
