package traffic

import (
	"math"
	"sort"

	"occamy/internal/workload"
)

// rng is splitmix64: a tiny, seedable, platform-independent generator. The
// traffic layer never touches math/rand — every stream is derived from the
// (spec, seed) pair so traces regenerate bit-identically anywhere.
type rng struct{ s uint64 }

func newRng(seed uint64) *rng { return &rng{s: seed} }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// float returns a uniform float64 in [0, 1).
func (r *rng) float() float64 { return float64(r.next()>>11) / (1 << 53) }

// exp returns an exponential variate with the given mean (cycles).
func (r *rng) exp(mean float64) float64 {
	u := r.float()
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	return -math.Log(1-u) * mean
}

// intn returns a uniform int in [0, n).
func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// Arrival is one pregenerated task arrival.
type Arrival struct {
	Cycle   uint64
	Tenant  int32
	Kernel  int32 // index into Trace.Kernels
	Elems   int32
	Repeats int32
}

// ChurnEvent is a tenant exit (On=false) or re-entry (On=true).
type ChurnEvent struct {
	Cycle  uint64
	Tenant int32
	On     bool
}

// Trace is the fully materialized, deterministic scenario: everything the
// running engine consumes is in here, pregenerated and sorted.
type Trace struct {
	Arrivals []Arrival
	Churn    []ChurnEvent
	Kernels  []string // resolved mix kernel names, spec order
	Horizon  uint64
	// ServiceEst is the estimated mean cycles to serve one task on one
	// core — the capacity model behind Spec.Load.
	ServiceEst float64
	// Truncated counts arrivals dropped by Spec.MaxTasks (never silent).
	Truncated int
}

// Calibrated cycles-per-element constants for the capacity estimate:
// memory-bound kernels (oi_mem < 1) stream from DRAM and cost more cycles
// per element than cache-resident compute-bound kernels, and tasks below the
// compiler's multi-version threshold run the non-vectorized variant at
// roughly an order of magnitude more cycles per element. These only scale
// the Load axis; the reported latencies are always measured, not modeled.
const (
	cpeMemory  = 4.0
	cpeCompute = 1.5
	cpeScalar  = 24.0
	// scalarThreshold mirrors the compiler's default ScalarThreshold: trip
	// counts below it take the §6.3 non-vectorized version.
	scalarThreshold = 128
	// Arrival sizes are jittered uniformly over [jitterLo, jitterHi) times
	// Spec.Elems (see genArrivals), so a spec near the threshold serves a
	// blend of scalar and vectorized tasks.
	jitterLo = 0.6
	jitterHi = 1.4
)

// EstimateServiceCycles returns the mix-weighted mean service demand of one
// task in cycles, the denominator of the offered-load calculation. It
// accounts for the multi-version scalar fallback: the fraction of the
// arrival-size jitter range falling below the vectorization threshold is
// charged at the scalar rate.
func EstimateServiceCycles(s *Spec) float64 {
	// Fraction of arrivals expected to run the non-vectorized version.
	pScalar := (scalarThreshold/float64(s.Elems) - jitterLo) / (jitterHi - jitterLo)
	if pScalar < 0 {
		pScalar = 0
	} else if pScalar > 1 {
		pScalar = 1
	}
	reg := workload.NewRegistry()
	var wsum, acc float64
	for _, m := range s.Mix {
		k := reg.Kernel(m.Kernel)
		cpe := cpeCompute
		if k.OI().Mem < 1 {
			cpe = cpeMemory
		}
		cpe = pScalar*cpeScalar + (1-pScalar)*cpe
		acc += float64(m.Weight) * float64(s.Elems*s.Repeats) * cpe
		wsum += float64(m.Weight)
	}
	return acc / wsum
}

// Generate materializes the scenario for the given seed (spec.Seed wins
// when non-zero). Pure: same (spec, seed) in, bit-identical trace out.
func Generate(s *Spec, seed uint64) *Trace {
	if s.Seed != 0 {
		seed = s.Seed
	}
	tr := &Trace{Horizon: s.Horizon, ServiceEst: EstimateServiceCycles(s)}
	for _, m := range s.Mix {
		tr.Kernels = append(tr.Kernels, m.Kernel)
	}
	// Cumulative mix weights for kernel selection.
	cum := make([]int, len(s.Mix))
	total := 0
	for i, m := range s.Mix {
		total += m.Weight
		cum[i] = total
	}
	pickKernel := func(r *rng) int32 {
		w := r.intn(total) + 1
		for i, c := range cum {
			if w <= c {
				return int32(i)
			}
		}
		return int32(len(cum) - 1)
	}

	totalRate := s.Load * float64(s.Cores) / tr.ServiceEst // tasks per cycle
	perTenant := totalRate / float64(s.Tenants)

	for t := 0; t < s.Tenants; t++ {
		// Independent streams per tenant and per purpose, so changing one
		// knob never reshuffles unrelated draws.
		aRng := newRng(seed*0x9e3779b9 + uint64(t)*2654435761 + 1)
		cRng := newRng(seed*0x85ebca6b + uint64(t)*2246822519 + 2)

		on := churnWindows(s, t, cRng, tr)
		genArrivals(s, t, perTenant, aRng, on, tr, pickKernel)
	}

	sort.SliceStable(tr.Arrivals, func(i, j int) bool {
		a, b := tr.Arrivals[i], tr.Arrivals[j]
		if a.Cycle != b.Cycle {
			return a.Cycle < b.Cycle
		}
		return a.Tenant < b.Tenant
	})
	sort.SliceStable(tr.Churn, func(i, j int) bool {
		a, b := tr.Churn[i], tr.Churn[j]
		if a.Cycle != b.Cycle {
			return a.Cycle < b.Cycle
		}
		return a.Tenant < b.Tenant
	})
	if len(tr.Arrivals) > s.MaxTasks {
		tr.Truncated = len(tr.Arrivals) - s.MaxTasks
		tr.Arrivals = tr.Arrivals[:s.MaxTasks]
	}
	return tr
}

// window is a half-open [start, end) interval during which a tenant is
// present.
type window struct{ start, end uint64 }

// churnWindows generates tenant t's ON windows and the matching churn
// events. Tenant 0 is churn-exempt so every scenario keeps one stable
// resident (the fairness-floor reference point).
func churnWindows(s *Spec, t int, r *rng, tr *Trace) []window {
	if s.ChurnOn == 0 || t == 0 {
		return []window{{0, s.Horizon}}
	}
	var wins []window
	now := uint64(0)
	for now < s.Horizon {
		onLen := uint64(r.exp(float64(s.ChurnOn))) + 1
		end := now + onLen
		if end > s.Horizon {
			end = s.Horizon
		}
		wins = append(wins, window{now, end})
		if end >= s.Horizon {
			break
		}
		tr.Churn = append(tr.Churn, ChurnEvent{Cycle: end, Tenant: int32(t), On: false})
		offLen := uint64(r.exp(float64(s.ChurnOff))) + 1
		now = end + offLen
		if now >= s.Horizon {
			break
		}
		tr.Churn = append(tr.Churn, ChurnEvent{Cycle: now, Tenant: int32(t), On: true})
	}
	return wins
}

// genArrivals draws tenant t's arrivals inside its ON windows according to
// the spec's process, appending to tr.Arrivals.
func genArrivals(s *Spec, t int, rate float64, r *rng, on []window, tr *Trace, pickKernel func(*rng) int32) {
	emit := func(cycle uint64) {
		jitter := jitterLo + (jitterHi-jitterLo)*r.float() // mean 1.0, deterministic per arrival
		elems := int32(float64(s.Elems) * jitter)
		if elems < 64 {
			elems = 64
		}
		tr.Arrivals = append(tr.Arrivals, Arrival{
			Cycle: cycle, Tenant: int32(t),
			Kernel: pickKernel(r), Elems: elems, Repeats: int32(s.Repeats),
		})
	}
	inOn := func(c uint64) bool {
		for _, w := range on {
			if c >= w.start && c < w.end {
				return true
			}
		}
		return false
	}

	switch s.Process {
	case Poisson:
		now := 0.0
		for {
			now += r.exp(1 / rate)
			c := uint64(now)
			if c >= s.Horizon {
				return
			}
			if inOn(c) {
				emit(c)
			}
		}
	case Bursty:
		// Two-state MMPP with long-run mean rate preserved: high state at
		// burst-weighted rate, low state at the complementary rate, equal
		// expected dwell times.
		rateHigh := rate * 2 * s.Burst / (1 + s.Burst)
		rateLow := rate * 2 / (1 + s.Burst)
		dwell := float64(s.Horizon) / 12
		high := r.float() < 0.5
		now, stateEnd := 0.0, r.exp(dwell)
		for {
			cur := rateLow
			if high {
				cur = rateHigh
			}
			next := now + r.exp(1/cur)
			if next > stateEnd {
				// No arrival before the regime switch: jump to the
				// switch point and redraw (exponentials are memoryless).
				now = stateEnd
				if now >= float64(s.Horizon) {
					return
				}
				high = !high
				stateEnd = now + r.exp(dwell)
				continue
			}
			now = next
			c := uint64(now)
			if c >= s.Horizon {
				return
			}
			if inOn(c) {
				emit(c)
			}
		}
	case Diurnal:
		// Thinned Poisson at the 2x peak rate, accepted with probability
		// proportional to the mean-preserving sinusoidal profile.
		peak := 2 * rate
		now := 0.0
		for {
			now += r.exp(1 / peak)
			c := uint64(now)
			if c >= s.Horizon {
				return
			}
			frac := (1 + math.Sin(2*math.Pi*now/float64(s.Period))) / 2
			if r.float() < frac && inOn(c) {
				emit(c)
			}
		}
	}
}
