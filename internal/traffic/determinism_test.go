package traffic

import (
	"testing"

	"occamy/internal/arch"
	"occamy/internal/archtest"
	"occamy/internal/fault"
)

func mustFaults(t *testing.T, spec string) []fault.Fault {
	t.Helper()
	fs, err := fault.ParseSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

// outcomeDigest folds everything a traffic run is contractually required to
// reproduce: the Source's per-task outcome digest and the stop cycle.
func outcomeDigest(sc *Scenario) uint64 {
	d := archtest.NewDigest()
	d.U64(sc.Src.Digest(), sc.Sys.Engine.Cycle(), sc.Sched.Switches)
	return d.Sum()
}

func runDigest(t *testing.T, kind arch.Kind, spec Spec, opts arch.Options) uint64 {
	t.Helper()
	sc := runScenario(t, kind, spec, opts)
	if err := sc.ConservationDeep(); err != nil {
		t.Fatal(err)
	}
	return outcomeDigest(sc)
}

// TestTrafficSkipLegacyBitIdentical: the same seeded scenario must produce
// bit-identical outcomes whether the engine skip-aheads over quiescent
// windows or ticks every cycle — on every architecture, with churn on.
func TestTrafficSkipLegacyBitIdentical(t *testing.T) {
	spec := smallSpec("churn=5000:8000")
	for _, kind := range arch.Kinds {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			archtest.CheckVariants(t, []archtest.Variant{
				{Name: "skip-ahead", Run: func(t *testing.T) uint64 {
					return runDigest(t, kind, spec, arch.Options{Seed: 21})
				}},
				{Name: "legacy-tick", Run: func(t *testing.T) uint64 {
					return runDigest(t, kind, spec, arch.Options{Seed: 21, LegacyTick: true})
				}},
			})
		})
	}
}

// TestTrafficSkipAheadEngages guards against the skip/legacy property
// passing vacuously: a lightly loaded scenario has long idle gaps between
// arrivals, and the engine must actually skip them (the scheduler and the
// traffic source are both sleepers).
func TestTrafficSkipAheadEngages(t *testing.T) {
	spec, err := ParseSpec("poisson:load=0.2,tenants=2,cores=2,horizon=60000,slice=1500,elems=256,repeats=1,drain")
	if err != nil {
		t.Fatal(err)
	}
	sc := runScenario(t, arch.Occamy, spec, arch.Options{Seed: 4})
	if sc.Sys.Engine.Skips() == 0 {
		t.Fatal("skip-ahead never engaged on an idle-heavy traffic run")
	}
}

// TestTrafficParallelBitIdentical: concurrent scenario runs (the -j N
// path) must not perturb outcomes — four goroutines running the same
// seeded scenario against a serial reference.
func TestTrafficParallelBitIdentical(t *testing.T) {
	spec := smallSpec("churn=5000:8000")
	run := func(t *testing.T) uint64 {
		return runDigest(t, arch.Occamy, spec, arch.Options{Seed: 33})
	}
	serial := run(t)
	archtest.CheckVariantsParallel(t, []archtest.Variant{
		{Name: "parallel-1", Run: run},
		{Name: "parallel-2", Run: run},
		{Name: "parallel-3", Run: run},
		{Name: "parallel-4", Run: run},
	})
	if d := run(t); d != serial {
		t.Fatalf("serial rerun diverged: %016x vs %016x", d, serial)
	}
}

// TestTrafficCheckpointForkBitIdentical: forking a run from a mid-flight
// checkpoint — arrivals pending, tasks queued, possibly mid-switch — must
// finish bit-identically to the straight run, on every architecture.
func TestTrafficCheckpointForkBitIdentical(t *testing.T) {
	spec := smallSpec("churn=5000:8000")
	for _, kind := range arch.Kinds {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			// Straight run for the reference digest.
			straight := runDigest(t, kind, spec, arch.Options{Seed: 55})

			// Forked run: pause mid-flight, snapshot, finish, rewind,
			// finish again. Both continuations and the straight run must
			// agree.
			sc, err := Build(kind, spec, arch.Options{Seed: 55})
			if err != nil {
				t.Fatal(err)
			}
			mid := spec.Horizon / 2
			if _, err := sc.Sys.Engine.RunUntil(func() bool { return sc.Sys.Engine.Cycle() >= mid }, sc.DefaultBudget()); err != nil {
				t.Fatal(err)
			}
			cp := sc.Snapshot()
			if err := sc.Run(sc.DefaultBudget()); err != nil {
				t.Fatal(err)
			}
			first := outcomeDigest(sc)
			if err := sc.RestoreSnapshot(cp); err != nil {
				t.Fatal(err)
			}
			if err := sc.Run(sc.DefaultBudget()); err != nil {
				t.Fatal(err)
			}
			second := outcomeDigest(sc)
			if first != straight {
				t.Fatalf("paused run diverged from straight: %016x vs %016x", first, straight)
			}
			if second != first {
				t.Fatalf("forked continuation diverged: %016x vs %016x", second, first)
			}
		})
	}
}

// TestTrafficFaultedDeterminism: fault injection forces the legacy tick
// path; the scenario must still reproduce exactly under faults (same seed,
// two runs) and conserve every task.
func TestTrafficFaultedDeterminism(t *testing.T) {
	spec := smallSpec("churn=5000:8000")
	opts := arch.Options{Seed: 77, Faults: mustFaults(t, "exebu:2@9000+15000")}
	run := func(t *testing.T) uint64 {
		return runDigest(t, arch.Occamy, spec, opts)
	}
	archtest.CheckVariants(t, []archtest.Variant{
		{Name: "faulted-run-1", Run: run},
		{Name: "faulted-run-2", Run: run},
	})
}
