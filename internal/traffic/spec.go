// Package traffic is the open-loop scenario layer: it turns a compact,
// seeded traffic spec into a deterministic stream of task arrivals, tenant
// churn and per-tenant SLO reports, scheduled onto any of the four sharing
// architectures through the osched preemptive scheduler.
//
// Everything downstream of a (Spec, seed) pair is a pure function: the
// arrival trace is pregenerated at build time into preallocated rings, so
// the running engine allocates nothing, skips quiescent gaps between
// arrivals, and reproduces bit-identically across skip-ahead, parallelism
// and checkpoint forking (DESIGN.md §12).
package traffic

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"occamy/internal/workload"
)

// Process selects the arrival process family.
type Process uint8

const (
	// Poisson arrivals: exponential inter-arrival times at constant rate.
	Poisson Process = iota
	// Bursty arrivals: a two-state Markov-modulated Poisson process that
	// alternates between a high-rate and a low-rate regime with the same
	// long-run mean as Poisson.
	Bursty
	// Diurnal arrivals: a sinusoidally modulated rate (mean-preserving),
	// the classic day/night load shape compressed to simulated cycles.
	Diurnal
)

var processNames = map[Process]string{Poisson: "poisson", Bursty: "bursty", Diurnal: "diurnal"}

func (p Process) String() string {
	if n, ok := processNames[p]; ok {
		return n
	}
	return fmt.Sprintf("process(%d)", p)
}

// MixEntry is one kernel in a tenant mix with its relative weight.
type MixEntry struct {
	Kernel string
	Weight int
}

// Spec describes an open-loop traffic scenario. The zero value is not
// runnable; use ParseSpec or DefaultSpec, or fill fields and call
// ApplyDefaults + Validate.
type Spec struct {
	Process Process
	// Load is the offered load relative to system capacity: 1.0 means
	// arrivals carry exactly as much work as the cores can serve.
	Load    float64
	Tenants int
	Cores   int
	// Horizon is the arrival-generation window in cycles; no task arrives
	// at or after Horizon.
	Horizon uint64
	// Seed overrides the run seed when non-zero.
	Seed uint64
	// Slice is the scheduler preemption quantum in cycles.
	Slice uint64
	// Mix is the kernel mix tasks are drawn from (Table-3 registry names).
	Mix []MixEntry
	// Elems/Repeats size each task's kernel; per-task lifetimes jitter
	// Elems by a deterministic ±40%.
	Elems   int
	Repeats int
	// ChurnOff/ChurnOn are the mean OFF and ON period lengths of tenant
	// exit/re-entry churn (both zero disables churn; tenant 0 never
	// churns so the scenario always has a stable resident).
	ChurnOff uint64
	ChurnOn  uint64
	// Burst is the high/low rate ratio of the bursty process.
	Burst float64
	// Period is the diurnal period in cycles (0 = Horizon/2).
	Period uint64
	// Drain runs past Horizon until every admitted task completes;
	// otherwise the run stops at Horizon + Horizon/4 and unfinished tasks
	// are reported as incomplete.
	Drain bool
	// MaxTasks caps the generated arrival count; truncation is reported,
	// never silent.
	MaxTasks int
}

// DefaultSpec returns the canonical scenario: Poisson arrivals at 1.0x load,
// 4 tenants over 4 cores with a mixed compute/memory kernel blend.
func DefaultSpec() Spec {
	s := Spec{}
	s.ApplyDefaults()
	return s
}

// ApplyDefaults fills every unset field with its default.
func (s *Spec) ApplyDefaults() {
	if s.Load == 0 {
		s.Load = 1.0
	}
	if s.Tenants == 0 {
		s.Tenants = 4
	}
	if s.Cores == 0 {
		s.Cores = 4
	}
	if s.Horizon == 0 {
		s.Horizon = 120_000
	}
	if s.Slice == 0 {
		s.Slice = 1500
	}
	if len(s.Mix) == 0 {
		s.Mix = []MixEntry{{"dotProd", 2}, {"wsm51", 1}, {"rho_eos4", 1}}
	}
	if s.Elems == 0 {
		s.Elems = 640
	}
	if s.Repeats == 0 {
		s.Repeats = 2
	}
	if s.Burst == 0 {
		s.Burst = 8
	}
	if s.Period == 0 {
		s.Period = s.Horizon / 2
	}
	if s.MaxTasks == 0 {
		s.MaxTasks = 1024
	}
}

// Validate checks the spec against the Table-3 registry and structural
// limits. It does not mutate the spec; call ApplyDefaults first when
// accepting partial specs.
func (s *Spec) Validate() error {
	if _, ok := processNames[s.Process]; !ok {
		return fmt.Errorf("traffic: unknown process %d", s.Process)
	}
	if s.Load <= 0 || s.Load > 16 {
		return fmt.Errorf("traffic: load %g out of range (0, 16]", s.Load)
	}
	if s.Tenants < 1 || s.Tenants > 256 {
		return fmt.Errorf("traffic: tenants %d out of range [1, 256]", s.Tenants)
	}
	if s.Cores < 1 || s.Cores > 256 {
		return fmt.Errorf("traffic: cores %d out of range [1, 256]", s.Cores)
	}
	if s.Horizon < 1000 || s.Horizon > 1<<40 {
		return fmt.Errorf("traffic: horizon %d out of range [1000, 2^40]", s.Horizon)
	}
	if s.Slice < 100 {
		return fmt.Errorf("traffic: slice %d below minimum 100", s.Slice)
	}
	if len(s.Mix) == 0 {
		return fmt.Errorf("traffic: empty kernel mix")
	}
	known := knownKernels()
	for _, m := range s.Mix {
		if !known[m.Kernel] {
			return fmt.Errorf("traffic: unknown kernel %q in mix", m.Kernel)
		}
		if m.Weight < 1 {
			return fmt.Errorf("traffic: kernel %q weight %d must be >= 1", m.Kernel, m.Weight)
		}
	}
	if s.Elems < 64 || s.Elems > 1<<20 {
		return fmt.Errorf("traffic: elems %d out of range [64, 2^20]", s.Elems)
	}
	if s.Repeats < 1 || s.Repeats > 1<<16 {
		return fmt.Errorf("traffic: repeats %d out of range [1, 65536]", s.Repeats)
	}
	if (s.ChurnOff == 0) != (s.ChurnOn == 0) {
		return fmt.Errorf("traffic: churn needs both off and on periods (got %d/%d)", s.ChurnOff, s.ChurnOn)
	}
	if s.ChurnOn > 0 && (s.ChurnOn < 500 || s.ChurnOff < 500) {
		return fmt.Errorf("traffic: churn periods below minimum 500 cycles")
	}
	if s.Burst < 1 || s.Burst > 1000 {
		return fmt.Errorf("traffic: burst %g out of range [1, 1000]", s.Burst)
	}
	if s.Period < 100 {
		return fmt.Errorf("traffic: period %d below minimum 100", s.Period)
	}
	if s.MaxTasks < 1 || s.MaxTasks > 65536 {
		return fmt.Errorf("traffic: maxtasks %d out of range [1, 65536]", s.MaxTasks)
	}
	return nil
}

var kernelSet map[string]bool

func knownKernels() map[string]bool {
	if kernelSet == nil {
		set := map[string]bool{}
		for _, n := range workload.NewRegistry().KernelNames() {
			set[n] = true
		}
		kernelSet = set
	}
	return kernelSet
}

// String renders the spec in canonical parseable form: every field is
// emitted, in fixed order, so ParseSpec(s.String()) round-trips exactly.
func (s *Spec) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s:load=%g,tenants=%d,cores=%d,horizon=%d,slice=%d",
		s.Process, s.Load, s.Tenants, s.Cores, s.Horizon, s.Slice)
	b.WriteString(",mix=")
	for i, m := range s.Mix {
		if i > 0 {
			b.WriteByte('+')
		}
		fmt.Fprintf(&b, "%s:%d", m.Kernel, m.Weight)
	}
	fmt.Fprintf(&b, ",elems=%d,repeats=%d", s.Elems, s.Repeats)
	if s.ChurnOn > 0 {
		fmt.Fprintf(&b, ",churn=%d:%d", s.ChurnOff, s.ChurnOn)
	}
	if s.Process == Bursty {
		fmt.Fprintf(&b, ",burst=%g", s.Burst)
	}
	if s.Process == Diurnal {
		fmt.Fprintf(&b, ",period=%d", s.Period)
	}
	if s.Seed != 0 {
		fmt.Fprintf(&b, ",seed=%d", s.Seed)
	}
	if s.MaxTasks != 1024 {
		fmt.Fprintf(&b, ",maxtasks=%d", s.MaxTasks)
	}
	if s.Drain {
		b.WriteString(",drain")
	}
	return b.String()
}

// ParseSpec parses the compact traffic-spec syntax:
//
//	process[:key=value,...][,drain]
//
// e.g. "poisson:load=2,tenants=6,cores=4,mix=dotProd:2+wsm51:1,churn=8000:20000,drain".
// Defaults are applied and the result validated.
func ParseSpec(in string) (Spec, error) {
	var s Spec
	head, rest, _ := strings.Cut(strings.TrimSpace(in), ":")
	switch head {
	case "poisson":
		s.Process = Poisson
	case "bursty":
		s.Process = Bursty
	case "diurnal":
		s.Process = Diurnal
	default:
		return s, fmt.Errorf("traffic: unknown process %q", head)
	}
	if rest != "" {
		for _, kv := range strings.Split(rest, ",") {
			key, val, hasVal := strings.Cut(kv, "=")
			key = strings.TrimSpace(key)
			if !hasVal {
				switch key {
				case "drain":
					s.Drain = true
					continue
				case "":
					continue
				default:
					return s, fmt.Errorf("traffic: bare key %q (only \"drain\" is a flag)", key)
				}
			}
			if err := s.setField(key, strings.TrimSpace(val)); err != nil {
				return s, err
			}
		}
	}
	s.ApplyDefaults()
	if err := s.Validate(); err != nil {
		return s, err
	}
	return s, nil
}

func (s *Spec) setField(key, val string) error {
	// Zero means "unset, take the default" throughout Spec, so an explicit
	// zero would be silently replaced by ApplyDefaults — reject it instead
	// (seed is the exception: 0 legitimately means "no override").
	pUint := func(dst *uint64) error {
		v, err := strconv.ParseUint(val, 10, 62)
		if err != nil {
			return fmt.Errorf("traffic: %s=%q: %v", key, val, err)
		}
		if v == 0 && key != "seed" {
			return fmt.Errorf("traffic: %s=0 is not a valid setting", key)
		}
		*dst = v
		return nil
	}
	pInt := func(dst *int) error {
		v, err := strconv.Atoi(val)
		if err != nil {
			return fmt.Errorf("traffic: %s=%q: %v", key, val, err)
		}
		if v == 0 {
			return fmt.Errorf("traffic: %s=0 is not a valid setting", key)
		}
		*dst = v
		return nil
	}
	switch key {
	case "load":
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return fmt.Errorf("traffic: load=%q: %v", val, err)
		}
		if v == 0 {
			return fmt.Errorf("traffic: load=0 is not a valid setting")
		}
		s.Load = v
	case "burst":
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return fmt.Errorf("traffic: burst=%q: %v", val, err)
		}
		if v == 0 {
			return fmt.Errorf("traffic: burst=0 is not a valid setting")
		}
		s.Burst = v
	case "tenants":
		return pInt(&s.Tenants)
	case "cores":
		return pInt(&s.Cores)
	case "elems":
		return pInt(&s.Elems)
	case "repeats":
		return pInt(&s.Repeats)
	case "maxtasks":
		return pInt(&s.MaxTasks)
	case "horizon":
		return pUint(&s.Horizon)
	case "slice":
		return pUint(&s.Slice)
	case "seed":
		return pUint(&s.Seed)
	case "period":
		return pUint(&s.Period)
	case "churn":
		off, on, ok := strings.Cut(val, ":")
		if !ok {
			return fmt.Errorf("traffic: churn=%q wants off:on", val)
		}
		offV, err1 := strconv.ParseUint(off, 10, 62)
		onV, err2 := strconv.ParseUint(on, 10, 62)
		if err1 != nil || err2 != nil {
			return fmt.Errorf("traffic: churn=%q: bad cycle counts", val)
		}
		s.ChurnOff, s.ChurnOn = offV, onV
	case "mix":
		s.Mix = nil
		for _, ent := range strings.Split(val, "+") {
			name, w, ok := strings.Cut(ent, ":")
			if !ok {
				return fmt.Errorf("traffic: mix entry %q wants kernel:weight", ent)
			}
			wv, err := strconv.Atoi(w)
			if err != nil {
				return fmt.Errorf("traffic: mix weight %q: %v", w, err)
			}
			s.Mix = append(s.Mix, MixEntry{Kernel: name, Weight: wv})
		}
	default:
		return fmt.Errorf("traffic: unknown key %q", key)
	}
	return nil
}

// StopCycle returns the pinned simulation stop for non-drain runs (drain
// runs stop when the last task completes).
func (s *Spec) StopCycle() uint64 { return s.Horizon + s.Horizon/4 }

// Equal reports semantic equality (the round-trip property tested by
// FuzzTrafficSpec).
func (s *Spec) Equal(o *Spec) bool {
	if s.Process != o.Process || s.Load != o.Load || s.Tenants != o.Tenants ||
		s.Cores != o.Cores || s.Horizon != o.Horizon || s.Seed != o.Seed ||
		s.Slice != o.Slice || s.Elems != o.Elems || s.Repeats != o.Repeats ||
		s.ChurnOff != o.ChurnOff || s.ChurnOn != o.ChurnOn ||
		s.Burst != o.Burst || s.Period != o.Period || s.Drain != o.Drain ||
		s.MaxTasks != o.MaxTasks || len(s.Mix) != len(o.Mix) {
		return false
	}
	for i := range s.Mix {
		if s.Mix[i] != o.Mix[i] {
			return false
		}
	}
	return true
}

// SortedMix returns the mix sorted by kernel name (stable reporting order).
func (s *Spec) SortedMix() []MixEntry {
	out := append([]MixEntry(nil), s.Mix...)
	sort.Slice(out, func(i, j int) bool { return out[i].Kernel < out[j].Kernel })
	return out
}
