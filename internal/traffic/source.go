package traffic

import (
	"hash/fnv"
	"math/bits"

	"occamy/internal/obs"
	"occamy/internal/osched"
	"occamy/internal/sim"
)

// Source replays a pregenerated Trace into the scheduler: it is the
// open-loop arrival injector, the tenant-churn driver and the per-task
// record keeper, in one sim.Component.
//
// The hot path is allocation-free: every per-task record, histogram bin and
// tenant index is preallocated at construction, and Tick only advances
// cursors into the pregenerated event arrays. Source is a sim.Sleeper whose
// wake times are exactly the pregenerated event cycles (plus the pinned
// stop cycle), so the engine skips idle gaps between arrivals without ever
// skipping over one — the determinism contract of DESIGN.md §12.
type Source struct {
	spec  *Spec
	trace *Trace
	sched *osched.Scheduler

	ai, ci     int // cursors into trace.Arrivals / trace.Churn
	resumedAll bool

	tenantOn []bool
	tenantOf []int32   // task id -> tenant
	byTenant [][]int32 // tenant -> task ids, arrival order

	// Per-task records, indexed by task id (= arrival index).
	admitCycle    []uint64
	completeCycle []uint64
	admitted      []bool
	completed     []bool
	canceled      []bool

	// Live gauges and cumulative counters (telemetry-facing).
	runningNow  int
	nArrived    uint64
	nAdmitted   uint64
	nCompleted  uint64
	nCanceled   uint64
	sojournBins [obs.NumBins]uint64
	admitBins   [obs.NumBins]uint64
}

// NewSource builds the injector over a built scheduler. It registers itself
// as the scheduler's lifecycle hooks.
func NewSource(spec *Spec, tr *Trace, sched *osched.Scheduler) *Source {
	n := len(tr.Arrivals)
	s := &Source{
		spec: spec, trace: tr, sched: sched,
		tenantOn:      make([]bool, spec.Tenants),
		tenantOf:      make([]int32, n),
		byTenant:      make([][]int32, spec.Tenants),
		admitCycle:    make([]uint64, n),
		completeCycle: make([]uint64, n),
		admitted:      make([]bool, n),
		completed:     make([]bool, n),
		canceled:      make([]bool, n),
	}
	for t := range s.tenantOn {
		s.tenantOn[t] = true
	}
	for i, a := range tr.Arrivals {
		s.tenantOf[i] = a.Tenant
		s.byTenant[a.Tenant] = append(s.byTenant[a.Tenant], int32(i))
	}
	sched.SetHooks(s)
	return s
}

// Name implements sim.Component.
func (s *Source) Name() string { return "traffic" }

// Tick implements sim.Component: applies every due churn transition, then
// every due arrival. Registered before the scheduler, so same-cycle
// admissions are dispatchable the cycle they arrive.
func (s *Source) Tick(now uint64) {
	for s.ci < len(s.trace.Churn) && s.trace.Churn[s.ci].Cycle <= now {
		ev := s.trace.Churn[s.ci]
		s.ci++
		s.applyChurn(ev)
	}
	for s.ai < len(s.trace.Arrivals) && s.trace.Arrivals[s.ai].Cycle <= now {
		id := s.ai
		s.ai++
		s.nArrived++
		s.sched.EnqueueReady(id)
	}
	if s.spec.Drain && !s.resumedAll && now >= s.trace.Horizon {
		// Drain mode: arrivals are over; every churned-out tenant returns
		// to collect, so suspended work finishes and Done() is reachable.
		s.resumedAll = true
		for t := range s.tenantOn {
			if !s.tenantOn[t] {
				s.applyChurn(ChurnEvent{Cycle: now, Tenant: int32(t), On: true})
			}
		}
	}
}

func (s *Source) applyChurn(ev ChurnEvent) {
	t := int(ev.Tenant)
	if s.tenantOn[t] == ev.On {
		return
	}
	s.tenantOn[t] = ev.On
	if ev.On {
		// Re-entry: re-admit everything suspended at exit.
		for _, id := range s.byTenant[t] {
			if s.sched.TaskSuspendedNow(int(id)) {
				s.sched.Resume(int(id))
			}
		}
		return
	}
	// Exit: cancel queued work (reneging), force running work off-core;
	// its context is kept for re-entry.
	for _, id := range s.byTenant[t] {
		i := int(id)
		if i >= s.ai { // not yet arrived
			break
		}
		if s.completed[i] || s.canceled[i] {
			continue
		}
		if s.sched.TaskRunningNow(i) {
			s.sched.Suspend(i)
		} else if !s.sched.TaskSuspendedNow(i) {
			s.sched.Cancel(i)
			s.canceled[i] = true
			s.nCanceled++
		}
	}
}

// NextWake implements sim.Sleeper: the next pregenerated event — arrival,
// churn transition, drain trigger or the pinned non-drain stop — bounds any
// quiescent skip, so no mode ever jumps over an injection cycle.
func (s *Source) NextWake(now uint64) (uint64, bool) {
	wake := uint64(sim.NeverWake)
	if s.ai < len(s.trace.Arrivals) && s.trace.Arrivals[s.ai].Cycle < wake {
		wake = s.trace.Arrivals[s.ai].Cycle
	}
	if s.ci < len(s.trace.Churn) && s.trace.Churn[s.ci].Cycle < wake {
		wake = s.trace.Churn[s.ci].Cycle
	}
	if s.spec.Drain && !s.resumedAll && s.trace.Horizon < wake {
		wake = s.trace.Horizon
	}
	if !s.spec.Drain && now < s.spec.StopCycle() && s.spec.StopCycle() < wake {
		wake = s.spec.StopCycle()
	}
	if wake <= now {
		return 0, false
	}
	return wake, true
}

// SkipTicks implements sim.Sleeper; all Source state is keyed on absolute
// cycles, so skipped windows need no catch-up.
func (s *Source) SkipTicks(from, n uint64) {}

// TaskRunning implements osched.Hooks.
func (s *Source) TaskRunning(id int, now uint64, first bool) {
	s.runningNow++
	if first {
		s.admitCycle[id] = now
		s.admitted[id] = true
		s.nAdmitted++
		s.admitBins[bits.Len64(now-s.trace.Arrivals[id].Cycle)]++
	}
}

// TaskPreempted implements osched.Hooks.
func (s *Source) TaskPreempted(id int, now uint64) { s.runningNow-- }

// TaskSuspended implements osched.Hooks: if the tenant already returned
// while the task was draining, re-admit immediately.
func (s *Source) TaskSuspended(id int, now uint64) {
	s.runningNow--
	if s.tenantOn[s.tenantOf[id]] && !s.canceled[id] {
		s.sched.Resume(id)
	}
}

// TaskCompleted implements osched.Hooks.
func (s *Source) TaskCompleted(id int, now uint64) {
	s.runningNow--
	s.completeCycle[id] = now
	s.completed[id] = true
	s.nCompleted++
	s.sojournBins[bits.Len64(now-s.trace.Arrivals[id].Cycle)]++
}

// Telemetry-facing gauges (telemetry.TrafficSource).

// Queued returns the ready-ring occupancy.
func (s *Source) Queued() int { return s.sched.QueueLen() }

// Running returns tasks currently on a core.
func (s *Source) Running() int { return s.runningNow }

// Arrived returns cumulative arrivals injected.
func (s *Source) Arrived() uint64 { return s.nArrived }

// Admitted returns cumulative first dispatches.
func (s *Source) Admitted() uint64 { return s.nAdmitted }

// Completed returns cumulative completions.
func (s *Source) Completed() uint64 { return s.nCompleted }

// Canceled returns cumulative churn cancellations.
func (s *Source) Canceled() uint64 { return s.nCanceled }

// CopySojournBins copies the cumulative arrival→completion latency bins.
func (s *Source) CopySojournBins(dst *[obs.NumBins]uint64) { *dst = s.sojournBins }

// CopyAdmitBins copies the cumulative arrival→first-dispatch wait bins.
func (s *Source) CopyAdmitBins(dst *[obs.NumBins]uint64) { *dst = s.admitBins }

// Digest folds every observable outcome — the pregenerated trace, each
// task's admit/complete cycles and flags, and the cumulative counters —
// into one FNV-64a value. Two runs of the same scenario are equivalent iff
// their digests match; the determinism suite compares it across skip-ahead,
// parallelism and checkpoint forks.
func (s *Source) Digest() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	w64 := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	wb := func(b bool) {
		if b {
			w64(1)
		} else {
			w64(0)
		}
	}
	for _, a := range s.trace.Arrivals {
		w64(a.Cycle)
		w64(uint64(a.Tenant))
		w64(uint64(a.Kernel))
		w64(uint64(a.Elems))
		w64(uint64(a.Repeats))
	}
	for _, c := range s.trace.Churn {
		w64(c.Cycle)
		w64(uint64(c.Tenant))
		wb(c.On)
	}
	for i := range s.admitCycle {
		w64(s.admitCycle[i])
		w64(s.completeCycle[i])
		wb(s.admitted[i])
		wb(s.completed[i])
		wb(s.canceled[i])
	}
	w64(s.nArrived)
	w64(s.nAdmitted)
	w64(s.nCompleted)
	w64(s.nCanceled)
	w64(uint64(s.ai))
	w64(uint64(s.ci))
	w64(s.sched.Switches)
	return h.Sum64()
}

// SourceState is a deterministic deep snapshot of the Source, composable
// with osched.SchedState and arch.SystemState for bit-identical forks.
type SourceState struct {
	AI, CI     int
	ResumedAll bool
	TenantOn   []bool

	AdmitCycle    []uint64
	CompleteCycle []uint64
	Admitted      []bool
	Completed     []bool
	Canceled      []bool

	RunningNow  int
	NArrived    uint64
	NAdmitted   uint64
	NCompleted  uint64
	NCanceled   uint64
	SojournBins [obs.NumBins]uint64
	AdmitBins   [obs.NumBins]uint64
}

// Snapshot captures the Source state (deep copy).
func (s *Source) Snapshot() SourceState {
	return SourceState{
		AI: s.ai, CI: s.ci, ResumedAll: s.resumedAll,
		TenantOn:      append([]bool(nil), s.tenantOn...),
		AdmitCycle:    append([]uint64(nil), s.admitCycle...),
		CompleteCycle: append([]uint64(nil), s.completeCycle...),
		Admitted:      append([]bool(nil), s.admitted...),
		Completed:     append([]bool(nil), s.completed...),
		Canceled:      append([]bool(nil), s.canceled...),
		RunningNow:    s.runningNow,
		NArrived:      s.nArrived, NAdmitted: s.nAdmitted,
		NCompleted: s.nCompleted, NCanceled: s.nCanceled,
		SojournBins: s.sojournBins, AdmitBins: s.admitBins,
	}
}

// Restore reinstalls a state captured by Snapshot on the same scenario.
func (s *Source) Restore(st SourceState) {
	s.ai, s.ci, s.resumedAll = st.AI, st.CI, st.ResumedAll
	copy(s.tenantOn, st.TenantOn)
	copy(s.admitCycle, st.AdmitCycle)
	copy(s.completeCycle, st.CompleteCycle)
	copy(s.admitted, st.Admitted)
	copy(s.completed, st.Completed)
	copy(s.canceled, st.Canceled)
	s.runningNow = st.RunningNow
	s.nArrived, s.nAdmitted = st.NArrived, st.NAdmitted
	s.nCompleted, s.nCanceled = st.NCompleted, st.NCanceled
	s.sojournBins, s.admitBins = st.SojournBins, st.AdmitBins
}
