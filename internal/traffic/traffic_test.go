package traffic

import (
	"testing"

	"occamy/internal/arch"
)

// smallSpec is a fast scenario used across the package's tests.
func smallSpec(extra string) Spec {
	base := "poisson:load=1.2,tenants=3,cores=2,horizon=40000,slice=1200,elems=256,repeats=1,drain"
	if extra != "" {
		base += "," + extra
	}
	s, err := ParseSpec(base)
	if err != nil {
		panic(err)
	}
	return s
}

func runScenario(t *testing.T, kind arch.Kind, spec Spec, opts arch.Options) *Scenario {
	t.Helper()
	sc, err := Build(kind, spec, opts)
	if err != nil {
		t.Fatalf("build %v: %v", kind, err)
	}
	if err := sc.Run(sc.DefaultBudget()); err != nil {
		t.Fatalf("run %v: %v", kind, err)
	}
	return sc
}

// TestScenarioAllArchs drives the same Poisson scenario through every
// architecture: all admitted work must finish (drain mode), results must
// verify, and the SLO report must conserve tasks.
func TestScenarioAllArchs(t *testing.T) {
	spec := smallSpec("")
	for _, kind := range arch.Kinds {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			sc := runScenario(t, kind, spec, arch.Options{Seed: 11})
			rep := sc.BuildReport()
			if rep.Total.Arrivals == 0 {
				t.Fatal("no arrivals generated")
			}
			if rep.Total.Completed == 0 {
				t.Fatal("nothing completed")
			}
			if rep.Total.Incomplete != 0 {
				t.Fatalf("drain run left %d incomplete", rep.Total.Incomplete)
			}
			if err := rep.Conservation(); err != nil {
				t.Fatal(err)
			}
			if err := sc.ConservationDeep(); err != nil {
				t.Fatal(err)
			}
			n, err := sc.VerifyCompleted(2e-3)
			if err != nil {
				t.Fatal(err)
			}
			if n != rep.Total.Completed {
				t.Fatalf("verified %d != completed %d", n, rep.Total.Completed)
			}
		})
	}
}

// TestScenarioProcessesAndChurn exercises the bursty and diurnal processes
// plus tenant churn on the elastic architecture.
func TestScenarioProcessesAndChurn(t *testing.T) {
	for _, proc := range []string{
		"bursty:load=1.5,tenants=3,cores=2,horizon=40000,slice=1200,elems=256,repeats=1,burst=10,drain",
		"diurnal:load=1.5,tenants=3,cores=2,horizon=40000,slice=1200,elems=256,repeats=1,period=10000,drain",
		"poisson:load=1.5,tenants=3,cores=2,horizon=60000,slice=1200,elems=256,repeats=1,churn=6000:9000,drain",
	} {
		spec, err := ParseSpec(proc)
		if err != nil {
			t.Fatalf("%s: %v", proc, err)
		}
		sc := runScenario(t, arch.Occamy, spec, arch.Options{Seed: 5})
		rep := sc.BuildReport()
		if rep.Total.Completed == 0 {
			t.Fatalf("%s: nothing completed", proc)
		}
		if err := rep.Conservation(); err != nil {
			t.Fatalf("%s: %v", proc, err)
		}
		if err := sc.ConservationDeep(); err != nil {
			t.Fatalf("%s: %v", proc, err)
		}
		if _, err := sc.VerifyCompleted(2e-3); err != nil {
			t.Fatalf("%s: %v", proc, err)
		}
	}
}

// TestScenarioOverloadTruncates checks the non-drain stop: under heavy
// overload the run must stop at the pinned cycle with incomplete tasks
// reported, never lost.
func TestScenarioOverloadTruncates(t *testing.T) {
	spec, err := ParseSpec("poisson:load=4,tenants=4,cores=2,horizon=30000,slice=1200,elems=256,repeats=1")
	if err != nil {
		t.Fatal(err)
	}
	sc := runScenario(t, arch.Occamy, spec, arch.Options{Seed: 3})
	rep := sc.BuildReport()
	if got, want := rep.Cycles, spec.StopCycle(); got > want {
		t.Fatalf("ran to %d, want stop at %d", got, want)
	}
	if rep.Total.Incomplete == 0 {
		t.Fatal("4x overload should leave incomplete tasks at the horizon stop")
	}
	if err := rep.Conservation(); err != nil {
		t.Fatal(err)
	}
	if _, err := sc.VerifyCompleted(2e-3); err != nil {
		t.Fatal(err)
	}
}

// TestTraceGeneration sanity-checks the pregenerated trace: sorted,
// in-horizon, load-scaled.
func TestTraceGeneration(t *testing.T) {
	spec := smallSpec("")
	tr := Generate(&spec, 7)
	if len(tr.Arrivals) == 0 {
		t.Fatal("no arrivals")
	}
	last := uint64(0)
	for _, a := range tr.Arrivals {
		if a.Cycle < last {
			t.Fatal("arrivals unsorted")
		}
		last = a.Cycle
		if a.Cycle >= spec.Horizon {
			t.Fatalf("arrival at %d beyond horizon %d", a.Cycle, spec.Horizon)
		}
		if a.Elems < 64 {
			t.Fatalf("task elems %d below floor", a.Elems)
		}
	}
	// Churn events must be nondecreasing in cycle: Source.Tick and
	// Source.NextWake walk Trace.Churn with a sequential cursor, so any
	// out-of-order event would be applied late (or pin NextWake in the
	// past). Use a spec with 2+ churning tenants — a per-tenant grouping
	// would violate the ordering there — and require churn to actually be
	// present so the check cannot pass vacuously.
	cspec := smallSpec("churn=2000:5000")
	ctr := Generate(&cspec, 7)
	if len(ctr.Churn) < 2 {
		t.Fatalf("churned spec should generate 2+ churn events, got %d", len(ctr.Churn))
	}
	lastChurn := uint64(0)
	for i, ev := range ctr.Churn {
		if ev.Cycle < lastChurn {
			t.Fatalf("churn event %d at cycle %d before predecessor at %d", i, ev.Cycle, lastChurn)
		}
		lastChurn = ev.Cycle
	}
	// Doubling load should roughly double arrivals (within loose bounds —
	// it's a random process, but a deterministic one).
	spec2 := spec
	spec2.Load = 2 * spec.Load
	tr2 := Generate(&spec2, 7)
	lo, hi := len(tr.Arrivals)*3/2, len(tr.Arrivals)*3
	if len(tr2.Arrivals) < lo || len(tr2.Arrivals) > hi {
		t.Fatalf("2x load: %d arrivals vs %d at 1x (want within [%d, %d])",
			len(tr2.Arrivals), len(tr.Arrivals), lo, hi)
	}
	// Same seed regenerates bit-identically.
	tr3 := Generate(&spec, 7)
	if len(tr3.Arrivals) != len(tr.Arrivals) {
		t.Fatal("same seed, different arrival count")
	}
	for i := range tr.Arrivals {
		if tr.Arrivals[i] != tr3.Arrivals[i] {
			t.Fatalf("arrival %d differs across regenerations", i)
		}
	}
}
