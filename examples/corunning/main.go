// Corunning reproduces the paper's §2 motivating example (Figure 2): the
// same <memory, compute> pair on all four SIMD sharing architectures, with
// busy-lane timelines showing the elastic repartitioning at the workload's
// phase-changing points.
//
//	go run ./examples/corunning
package main

import (
	"fmt"
	"log"

	"occamy"
)

func main() {
	sched := occamy.MotivatingPair()
	fmt.Printf("Motivating example: %v co-running\n\n", sched.WorkloadNames())

	type row struct {
		arch occamy.Arch
		rep  *occamy.Report
	}
	var rows []row
	for _, a := range occamy.Architectures() {
		cfg := occamy.DefaultConfig(a)
		cfg.Scale = 0.5
		rep, err := occamy.Run(cfg, sched)
		if err != nil {
			log.Fatal(err)
		}
		rows = append(rows, row{a, rep})
	}

	base := rows[0].rep // Private
	fmt.Printf("%-9s %10s %10s %8s %8s %9s\n",
		"Arch", "WL0 cyc", "WL1 cyc", "WL0 spd", "WL1 spd", "SIMD util")
	for _, r := range rows {
		fmt.Printf("%-9s %10d %10d %7.2fx %7.2fx %8.1f%%\n",
			r.arch, r.rep.Cores[0].Cycles, r.rep.Cores[1].Cycles,
			float64(base.Cores[0].Cycles)/float64(r.rep.Cores[0].Cycles),
			float64(base.Cores[1].Cycles)/float64(r.rep.Cores[1].Cycles),
			100*r.rep.Utilization)
	}

	fmt.Println("\nBusy lanes per 1000 cycles (' '..'%' = 0..32 lanes):")
	for _, r := range rows {
		for c := range r.rep.Cores {
			fmt.Printf("%-9s core%d |%s|\n", r.arch, c, r.rep.AsciiTimeline(c, 32))
		}
	}

	occ := rows[3].rep
	fmt.Printf("\nElastic run: %d lane repartitions, %d vector-length reconfigurations.\n",
		occ.Repartitions, occ.Reconfigures)
	fmt.Println("Watch core1's strip: it widens when WL0 moves to its second phase and")
	fmt.Println("again when WL0 finishes — the Figure 2(e) staircase.")
}
