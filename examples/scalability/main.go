// Scalability reproduces the §7.6 four-core experiment (Figure 16): two
// memory-intensive workloads on Core0/Core1 and two compute-intensive ones
// on Core2/Core3, sharing a 64-lane co-processor.
//
//	go run ./examples/scalability
package main

import (
	"fmt"
	"log"

	"occamy"
)

func main() {
	group := occamy.FourCoreGroups()[1] // WL21+WL20 (memory) + WL17+WL17 (compute)
	fmt.Printf("Four-core group: %v\n\n", group.WorkloadNames())

	reports := map[occamy.Arch]*occamy.Report{}
	for _, a := range occamy.Architectures() {
		cfg := occamy.DefaultConfig(a)
		cfg.Scale = 0.5
		rep, err := occamy.Run(cfg, group)
		if err != nil {
			log.Fatal(err)
		}
		reports[a] = rep
	}

	base := reports[occamy.Private]
	fmt.Printf("%-9s %9s %9s %9s %9s  (speedups over Private)\n",
		"Arch", "Core0", "Core1", "Core2", "Core3")
	for _, a := range occamy.Architectures() {
		rep := reports[a]
		fmt.Printf("%-9s", a)
		for c := range rep.Cores {
			fmt.Printf(" %8.2fx", float64(base.Cores[c].Cycles)/float64(rep.Cores[c].Cycles))
		}
		fmt.Println()
	}

	fmt.Println("\nThe paper's scalability claim: Occamy keeps the memory cores at parity")
	fmt.Println("and wins on the compute cores, with the lane manager juggling all four")
	fmt.Println("workloads' phase behaviours (watch the reconfiguration count grow):")
	fmt.Printf("Occamy: %d repartitions, %d reconfigurations across 4 cores\n",
		reports[occamy.Elastic].Repartitions, reports[occamy.Elastic].Reconfigures)
}
