// Scheduler demonstrates the §5 OS interaction, realized: more workloads
// than cores, time-sliced preemptively over the elastic co-processor. At
// every context switch the OS waits for the pipelines to drain, saves the
// full context — scalar registers, vector registers and the five EM-SIMD
// dedicated registers — releases the outgoing task's lanes, and on restore
// re-writes <OI> to trigger a fresh lane partition, exactly as the paper
// prescribes. Every task's results are verified at the end.
//
//	go run ./examples/scheduler
package main

import (
	"fmt"
	"log"

	"occamy"
)

func main() {
	// Five tasks — a mix of compute- and memory-intensive — on two cores.
	tasks := []occamy.WorkloadRef{
		occamy.WorkloadByName("spec/WL16"), // wsm51, compute
		occamy.WorkloadByName("spec/WL13"), // set_vbc2, compute
		occamy.WorkloadByName("spec/WL19"), // rho_eos2, memory (with reuse)
		occamy.WorkloadByName("cv/WL1"),    // fitLine2D, compute
		occamy.WorkloadByName("spec/WL20"), // sff2+sff5, memory, two phases
	}

	for _, slice := range []uint64{2000, 8000, 32000} {
		rep, err := occamy.RunOversubscribed(2, slice, 1, tasks...)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("slice %6d cycles: makespan %8d, %3d context switches, %d lane repartitions\n",
			slice, rep.Cycles, rep.Switches, rep.Repartitions)
	}

	fmt.Println("\nShorter slices mean more context switches and more lane repartitions")
	fmt.Println("(each save/restore re-triggers the lane manager, §5); all results are")
	fmt.Println("verified against the host reference, including reductions whose")
	fmt.Println("accumulators crossed context switches and vector-length changes.")
}
