// Faults demonstrates the deterministic fault-injection subsystem: the same
// co-scheduled pair runs fault-free, through a transient ExeBU failure, and
// through a permanent one, on the elastic architecture — showing detection,
// the lane manager's repartition over the survivors, and the recovery log.
// A final run kills every unit under the Private split to show the
// forward-progress watchdog converting the resulting livelock into a
// structured diagnostic dump instead of a hang.
//
//	go run ./examples/faults
package main

import (
	"errors"
	"fmt"
	"log"

	"occamy"
)

func main() {
	sched := occamy.PairByName("spec/WL20", "spec/WL17")

	fmt.Println("== fault-free baseline (Occamy) ==")
	cfg := occamy.DefaultConfig(occamy.Elastic)
	cfg.Scale = 0.25
	base, err := occamy.Run(cfg, sched)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(base.Summary())

	fmt.Println("\n== transient: 4 ExeBUs out for 20k cycles ==")
	cfg.Faults = "exebu:4@5000+20000"
	rep, err := occamy.Run(cfg, sched)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rep.Summary())
	fmt.Printf("slowdown vs fault-free: %.2fx\n", float64(rep.Cycles)/float64(base.Cycles))

	fmt.Println("\n== layered faults from a JSON file ==")
	fmt.Println("(transient ExeBU loss + halved DRAM bandwidth + a flaky dispatch link)")
	cfg.Faults = "@examples/faults/faults.json"
	rep, err = occamy.Run(cfg, sched)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rep.Summary())

	fmt.Println("\n== permanent: 8 of 8 units on one core's half... ==")
	fmt.Println("(Private pins each core to a fixed half; killing every unit")
	fmt.Println("wedges the machine, and the watchdog turns that into a dump)")
	pcfg := occamy.DefaultConfig(occamy.Private)
	pcfg.Scale = 0.25
	pcfg.Faults = "exebu:8@5000"
	pcfg.StallCycles = 100_000
	_, err = occamy.Run(pcfg, sched)
	var derr *occamy.DiagnosticError
	if !errors.As(err, &derr) {
		log.Fatalf("expected a watchdog diagnostic, got %v", err)
	}
	fmt.Print(derr.Dump)

	fmt.Println("\nThe elastic architecture repartitions around failures (the recovery")
	fmt.Println("lines above show time-to-repartition); static splits can only gate or")
	fmt.Println("die, which is what `occamy-bench -exp degradation` quantifies.")
}
