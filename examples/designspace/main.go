// Design-space exploration through the public API: re-run the motivating
// pair on Private and Elastic while sweeping the DRAM bandwidth and the
// shared vector-cache capacity around the Table 4 point (Config.Machine),
// and watch how robust the elastic compute-side win is to the surrounding
// machine. The full sweeps (all four architectures, three parameters) are
// `occamy-bench -exp dse`; EXPERIMENTS.md "Extensions" records them.
package main

import (
	"fmt"
	"log"

	"occamy"
)

// run executes the motivating pair at full scale on one architecture with
// the given hardware overrides and returns the compute core's cycles.
// (Reduced scales make the streams cache-resident and hide the memory-system
// parameters, so this example uses the calibrated full size — a few seconds.)
func run(a occamy.Arch, m *occamy.MachineTuning) uint64 {
	cfg := occamy.DefaultConfig(a)
	cfg.Machine = m
	rep, err := occamy.Run(cfg, occamy.MotivatingPair())
	if err != nil {
		log.Fatal(err)
	}
	return rep.Cores[1].Cycles
}

func main() {
	fmt.Println("Elastic sharing across the machine design space (motivating pair, Core1 cycles)")
	fmt.Println()

	fmt.Println("DRAM bandwidth (Table 4 default: 32 B/cycle = 64 GB/s):")
	fmt.Printf("  %-10s %12s %12s %10s\n", "BW", "Private", "Elastic", "speedup")
	for _, bw := range []float64{8, 16, 32, 64} {
		m := &occamy.MachineTuning{DRAMBytesPerCycle: bw}
		p, e := run(occamy.Private, m), run(occamy.Elastic, m)
		fmt.Printf("  %6.0f B/cy %12d %12d %9.2fx\n", bw, p, e, float64(p)/float64(e))
	}
	fmt.Println()

	fmt.Println("Shared vector-cache capacity (Table 4 default: 128 KB):")
	fmt.Printf("  %-10s %12s %12s %10s\n", "size", "Private", "Elastic", "speedup")
	for _, kb := range []int{16, 64, 128, 256} {
		m := &occamy.MachineTuning{VecCacheKB: kb}
		p, e := run(occamy.Private, m), run(occamy.Elastic, m)
		fmt.Printf("  %7d KB %12d %12d %9.2fx\n", kb, p, e, float64(p)/float64(e))
	}
	fmt.Println()
	fmt.Println("The win persists everywhere: elastic lane sharing moves lanes to the")
	fmt.Println("compute phase without adding memory traffic, so even a fully DRAM-bound")
	fmt.Println("machine keeps the compute-side speedup.")
}
