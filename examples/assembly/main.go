// Assembly walks through the EM-SIMD protocol at the ISA level with two
// hand-written programs (the Figure 9 code shape, by hand): core 0 runs a
// memory-ish loop and publishes a low operational intensity; core 1 runs a
// compute loop with a high one. The lane manager splits the 8 ExeBUs
// accordingly, and when core 0 finishes, its epilogue releases the lanes and
// core 1's partition monitor grabs them.
//
//	go run ./examples/assembly
package main

import (
	"fmt"
	"log"

	"occamy"
)

// Core 0: a[i] = a[i] (copy) over 4096 elements with oi ≈ 0.06 — memory-
// intensive, so the lane manager gives it few lanes.
const core0 = `
	; phase prologue: publish OI (packed pair ~0.06) and take a default lane
	MOVI X1, #1048592      ; PackOI(0.0625, 0.0625) = 16<<16 | 16
	MSR <OI>, X1
	MOVI X2, #1
setvl:	MSR <VL>, X2
	MRS X3, <status>
	B.NEI X3, #1, setvl

	MOVI X25, #4096        ; trip count
	MOVI X8, #65536        ; input base
	MOVI X9, #131072       ; output base
	MOVI X0, #0
loop:	MRS X4, <decision>     ; partition monitor
	B.EQ X4, X2, body
	B.EQI X4, #0, body
	MSR <VL>, X4
	MRS X3, <status>
	B.NEI X3, #1, loop
	MOV X2, X4
body:	RDELEMS X5
	ADD X6, X0, X5
	B.LT X25, X6, done
	VLD1W Z1, [X8, X0]
	VFADD Z2, Z1, Z1       ; out = 2*a
	VST1W Z2, [X9, X0]
	MOV X0, X6
	B loop
done:	MSR <OI>, #0           ; phase epilogue: release everything
rel:	MSR <VL>, #0
	MRS X3, <status>
	B.NEI X3, #1, rel
	HALT
`

// Core 1: a long dependent compute loop with oi = 1.0 — it wants every lane
// it can get.
const core1 = `
	MOVI X1, #16777472     ; PackOI(1.0, 1.0) = 256<<16 | 256
	MSR <OI>, X1
	MOVI X2, #1
setvl:	MSR <VL>, X2
	MRS X3, <status>
	B.NEI X3, #1, setvl

	MOVI X25, #8192
	MOVI X8, #4194304
	MOVI X9, #8388608
	VDUPI Z24, #1.0009765625
	MOVI X0, #0
loop:	MRS X4, <decision>
	B.EQ X4, X2, body
	B.EQI X4, #0, body
	MSR <VL>, X4
	MRS X3, <status>
	B.NEI X3, #1, loop
	MOV X2, X4
	VDUPI Z24, #1.0009765625  ; re-init the hoisted invariant (§6.4)
body:	RDELEMS X5
	ADD X6, X0, X5
	B.LT X25, X6, done
	VLD1W Z1, [X8, X0]
	VFMUL Z2, Z1, Z24
	VFMUL Z3, Z2, Z24
	VFMUL Z4, Z3, Z24
	VFMUL Z5, Z4, Z24
	VFADD Z6, Z5, Z1
	VFADD Z7, Z6, Z2
	VFADD Z1, Z7, Z3
	VST1W Z1, [X9, X0]
	MOV X0, X6
	B loop
done:	MSR <OI>, #0
rel:	MSR <VL>, #0
	MRS X3, <status>
	B.NEI X3, #1, rel
	HALT
`

func main() {
	asm, err := occamy.NewAssembly(core0, core1)
	if err != nil {
		log.Fatal(err)
	}
	// Seed input arrays.
	for i := 0; i < 4096; i++ {
		asm.WriteF32(uint64(65536+4*i), float32(i%7)+1)
	}
	for i := 0; i < 8192; i++ {
		asm.WriteF32(uint64(4194304+4*i), 1)
	}

	cycles, err := asm.Run(0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("finished in %d cycles\n\n", cycles)

	fmt.Println("lane-management log (the EM-SIMD protocol in action):")
	for _, e := range asm.LaneEvents() {
		fmt.Printf("  cycle %6d  core%d %-12s vl=%d  decisions=%v\n",
			e.Cycle, e.Core, e.Kind, e.VL, e.Decisions)
	}

	fmt.Printf("\ncore0 output[5] = %v (want %v)\n", asm.ReadF32(131072+20), 2*asm.ReadF32(65536+20))
	fmt.Printf("core1 output[0] = %v\n", asm.ReadF32(8388608))
	fmt.Println("\nNote the staircase: core1 starts at 1 granule, grows to 7 while core0")
	fmt.Println("holds 1, then takes all 8 once core0's epilogue releases its lanes.")
}
