// Quickstart: run one co-scheduled pair on the elastic (Occamy) architecture
// and print the paper's per-run metrics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"occamy"
)

func main() {
	// WL20 (two memory-intensive SPEC phases: sff2, sff5) co-runs with
	// WL17 (the compute-intensive wsm52 loop) — the §7.4 Case 1 pair.
	// The memory-intensive workload goes on Core0, as in the paper.
	sched := occamy.PairByName("spec/WL20", "spec/WL17")

	cfg := occamy.DefaultConfig(occamy.Elastic)
	cfg.Scale = 0.5 // half-size trip counts: quick but representative

	report, err := occamy.Run(cfg, sched)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(report.Summary())

	// Compare against the core-private baseline (Figure 1(a)).
	cfgP := occamy.DefaultConfig(occamy.Private)
	cfgP.Scale = cfg.Scale
	baseline, err := occamy.Run(cfgP, sched)
	if err != nil {
		log.Fatal(err)
	}
	for c := range report.Cores {
		speedup := float64(baseline.Cores[c].Cycles) / float64(report.Cores[c].Cycles)
		fmt.Printf("core%d speedup over Private: %.2fx\n", c, speedup)
	}

	// The elastic lane allocation over time (Figure 2(e)-style).
	fmt.Println("\nWL17 busy lanes over time (' '..'%' = 0..32):")
	fmt.Printf("|%s|\n", report.AsciiTimeline(1, 32))
}
