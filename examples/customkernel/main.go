// Customkernel shows the library's user-defined workload support: loop
// kernels described in JSON (load slots, statements in the compact
// expression syntax, trip counts) run through the full compiler + simulator
// stack — including elastic lane sharing and functional verification —
// exactly like the built-in Table 3 workloads.
//
//	go run ./examples/customkernel
package main

import (
	"fmt"
	"log"

	"occamy"
)

// A streaming SAXPY phase followed by a 3-point stencil blur: the first is
// memory-intensive (oi_mem = 0.17), the second has data reuse
// (oi_issue < oi_mem), so the lane manager treats them differently.
const customJSON = `{
  "name": "saxpy-blur",
  "phases": [
    {
      "kernel": "saxpy",
      "elems": 24576,
      "loads": [{"stream": 0}, {"stream": 1},
                {"stream": 2}, {"stream": 3}],
      "statements": [
        {"out": 4, "expr": "add(mul(s0, c2.5), s1)"},
        {"out": 5, "expr": "add(mul(s2, c0.5), s3)"}
      ]
    },
    {
      "kernel": "blur3",
      "elems": 2048,
      "repeats": 48,
      "loads": [{"stream": 0, "offset": -1}, {"stream": 0}, {"stream": 0, "offset": 1}],
      "statements": [
        {"out": 1, "expr": "mul(add(add(add(mul(s0,c0.25), mul(s1,c0.5)), mul(s2,c0.25)), c0.001), c1.0)"}
      ]
    }
  ]
}`

func main() {
	custom, err := occamy.WorkloadFromJSON([]byte(customJSON))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("custom workload %q phases (oi_issue, oi_mem): %v\n",
		custom.Name(), custom.PhaseOIs())

	// Co-run the custom workload against a Table 3 compute kernel on the
	// elastic architecture, and against the private baseline.
	peer := occamy.WorkloadByName("spec/WL16") // wsm51, compute-intensive
	sched := occamy.NewSchedule("custom+wsm51", custom, peer)

	for _, a := range []occamy.Arch{occamy.Private, occamy.Elastic} {
		cfg := occamy.DefaultConfig(a)
		cfg.Scale = 0.5
		rep, err := occamy.Run(cfg, sched) // Verify=true: results checked
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println()
		fmt.Print(rep.Summary())
		fmt.Printf("peer busy lanes |%s|\n", rep.AsciiTimeline(1, 32))
	}

	fmt.Println("\nThe lane manager reads the custom phases' <OI> just like the")
	fmt.Println("built-in ones: the saxpy phase frees lanes for the peer, the blur")
	fmt.Println("phase's reuse earns it extra issue-bandwidth lanes (§7.4 Case 4).")
}
