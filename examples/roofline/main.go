// Roofline explores the paper's vector-length-aware roofline model (§5.1)
// and the hardware lane manager's greedy partitioning (§5.2) without running
// the simulator: for each Table 3 kernel it prints the attainable
// performance across vector lengths and the lane split the manager would
// choose against a compute-intensive peer.
//
//	go run ./examples/roofline
package main

import (
	"fmt"

	"occamy"
)

func main() {
	fmt.Println("Attainable performance AP_vl (GFLOP/s, Eq. 4) per vector length,")
	fmt.Println("and the lane split vs a compute-intensive peer (granules of 8):")
	fmt.Printf("\n%-16s %6s %6s | %6s %6s %6s %6s | %s\n",
		"kernel", "oi_is", "oi_mem", "AP(4)", "AP(8)", "AP(16)", "AP(32)", "plan [kernel, peer]")
	for _, name := range occamy.Kernels() {
		issue, mem := occamy.KernelOI(name)
		plan := occamy.LanePlan([][2]float64{{issue, mem}, {10, 10}}, 8)
		fmt.Printf("%-16s %6.2f %6.2f | %6.1f %6.1f %6.1f %6.1f | [%d, %d]\n",
			name, issue, mem,
			occamy.Roofline(1, issue, mem),
			occamy.Roofline(2, issue, mem),
			occamy.Roofline(4, issue, mem),
			occamy.Roofline(8, issue, mem),
			plan[0], plan[1])
	}

	fmt.Println("\nTable 5 (WL8.p1, oi_issue=0.17 oi_mem=0.25): the issue-bandwidth ceiling")
	fmt.Println("binds below 12 lanes, so the manager grants 12 — not the memory-only 8:")
	for g := 1; g <= 8; g++ {
		fmt.Printf("  VL=%2d lanes: AP = %5.1f GFLOP/s\n", 4*g, occamy.Roofline(g, 1.0/6.0, 0.25))
	}
}
