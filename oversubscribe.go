package occamy

import (
	"fmt"

	"occamy/internal/osched"
	"occamy/internal/workload"
)

// OversubscribedReport summarizes a time-sliced run of more tasks than
// cores on the elastic architecture (§5's OS interaction, realized).
type OversubscribedReport struct {
	// Cycles is the makespan of the whole task set.
	Cycles uint64
	// Switches is the number of preemptive context switches performed.
	Switches uint64
	// Repartitions counts lane-manager plan computations, including those
	// triggered by context save/restore.
	Repartitions uint64
	// Tasks lists the task names in scheduling order.
	Tasks []string
}

// RunOversubscribed time-slices the given workloads over `cores` CPU cores
// of an elastic system with the given slice length in cycles. Contexts —
// scalar registers, vector registers and the five EM-SIMD registers — are
// saved and restored at quiescent points per §5, and every task's results
// are verified against the host reference.
func RunOversubscribed(cores int, sliceCycles uint64, seed uint64, refs ...WorkloadRef) (*OversubscribedReport, error) {
	ws := make([]*workload.Workload, 0, len(refs))
	for _, r := range refs {
		ws = append(ws, r.inner)
	}
	sched, sys, compiled, err := osched.Oversubscribed(ws, cores, sliceCycles, seed, 400_000_000)
	if err != nil {
		return nil, err
	}
	for i, comp := range compiled {
		for p := range comp.Phases {
			if err := comp.Phases[p].CheckResults(sys.Hier.Mem, 2e-3); err != nil {
				return nil, fmt.Errorf("occamy: task %d (%s) verification: %w", i, ws[i].Name, err)
			}
		}
	}
	return &OversubscribedReport{
		Cycles:       sys.Engine.Cycle(),
		Switches:     sched.Switches,
		Repartitions: sys.Coproc.Manager().Repartitions,
		Tasks:        sched.TaskNames(),
	}, nil
}
