package occamy

import (
	"strings"
	"testing"
)

func TestConfigValidateTrafficSpec(t *testing.T) {
	good := DefaultConfig(Elastic)
	good.Traffic = "poisson:load=2,tenants=3"
	if err := good.Validate(); err != nil {
		t.Fatalf("valid traffic spec rejected: %v", err)
	}
	for name, spec := range map[string]string{
		"unknown process": "laplace:load=2",
		"bad key":         "poisson:frobnicate=3",
		"bad value":       "poisson:load=banana",
		"zero tenants":    "poisson:tenants=0",
		"zero cores":      "poisson:cores=0",
		"bad churn":       "poisson:churn=5000",
		"stray field":     "poisson:load=2,=7",
	} {
		cfg := good
		cfg.Traffic = spec
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: Validate accepted Traffic=%q", name, spec)
		}
	}
}

func TestRunTrafficRequiresSpec(t *testing.T) {
	if _, err := RunTraffic(DefaultConfig(Elastic)); err == nil {
		t.Fatal("RunTraffic accepted an empty Config.Traffic")
	}
}

func TestRunTrafficSmoke(t *testing.T) {
	cfg := DefaultConfig(Elastic)
	cfg.MaxCycles = 0 // horizon-sized budget
	cfg.Traffic = "poisson:load=2,tenants=3,cores=2,horizon=10000,slice=400,elems=384,repeats=1,churn=900:1300"
	rep, err := RunTraffic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total.Arrivals == 0 || rep.Total.Completed == 0 {
		t.Fatalf("empty run: %d arrivals, %d completed", rep.Total.Arrivals, rep.Total.Completed)
	}
	if len(rep.Tenants) == 0 {
		t.Fatal("report carries no tenants")
	}
	s := rep.Summary()
	for _, want := range []string{"tenant", "admit p99", "SLO@"} {
		if !strings.Contains(s, want) {
			t.Fatalf("summary missing %q:\n%s", want, s)
		}
	}
}
