package occamy

import (
	"fmt"

	"occamy/internal/coproc"
	"occamy/internal/cpu"
	"occamy/internal/isa"
	"occamy/internal/mem"
	"occamy/internal/roofline"
	"occamy/internal/sim"
)

// Assembly gives direct access to the simulated machine for hand-written
// EM-SIMD programs: one assembly source per core, run on the elastic
// co-processor. See the isa package's Assemble documentation for the syntax
// and examples/assembly for a walkthrough of the Figure 9 protocol.
type Assembly struct {
	engine *sim.Engine
	cores  []*cpu.Core
	cp     *coproc.Coproc
	memry  *mem.Memory
}

// NewAssembly assembles one program per core and wires a fresh elastic
// system (Table 4 parameters, 4 granules per core).
func NewAssembly(sources ...string) (*Assembly, error) {
	if len(sources) == 0 {
		return nil, fmt.Errorf("occamy: no programs")
	}
	n := len(sources)
	engine := sim.NewEngine()
	stats := engine.Stats()
	hier := mem.NewHierarchy(mem.DefaultHierarchyConfig(n), stats)
	ccfg := coproc.DefaultConfig(n)
	cp := coproc.New(ccfg, hier.VecCache, hier.Mem, roofline.Default(), stats)
	a := &Assembly{engine: engine, cp: cp, memry: hier.Mem}
	for c, src := range sources {
		prog, err := isa.Assemble(fmt.Sprintf("core%d", c), src)
		if err != nil {
			return nil, fmt.Errorf("occamy: core %d: %w", c, err)
		}
		core := cpu.New(c, cpu.DefaultConfig(), prog, cp, hier.L1D[c], hier.Mem, stats)
		a.cores = append(a.cores, core)
		engine.Register(core)
	}
	engine.Register(cp)
	cp.SetResponder(func(core int, reg isa.Reg, val uint64, ready uint64) {
		a.cores[core].HandleResult(core, reg, val, ready)
	})
	return a, nil
}

// WriteF32 seeds simulated memory before Run.
func (a *Assembly) WriteF32(addr uint64, v float32) { a.memry.WriteF32(addr, v) }

// ReadF32 inspects simulated memory after Run.
func (a *Assembly) ReadF32(addr uint64) float32 { return a.memry.ReadF32(addr) }

// X reads a scalar register of a core after Run.
func (a *Assembly) X(core int, reg int) int64 { return a.cores[core].X(isa.Reg(reg)) }

// VL reads a core's configured vector length in granules.
func (a *Assembly) VL(core int) int { return a.cp.VL(core) }

// Run simulates until every core halts and the co-processor drains; it
// returns the cycle count.
func (a *Assembly) Run(maxCycles uint64) (uint64, error) {
	done := func() bool {
		now := a.engine.Cycle()
		for c, core := range a.cores {
			if !core.Halted() || !a.cp.Quiescent(c, now) {
				return false
			}
		}
		return true
	}
	if maxCycles == 0 {
		maxCycles = 10_000_000
	}
	if _, err := a.engine.RunUntil(done, maxCycles); err != nil {
		return a.engine.Cycle(), err
	}
	return a.engine.Cycle(), nil
}

// LaneEvents returns the lane-management log (repartitions and
// reconfigurations) for inspecting the EM-SIMD protocol.
func (a *Assembly) LaneEvents() []coproc.LaneEvent { return a.cp.LaneEvents() }
