package occamy

// The benchmarks in this file regenerate every table and figure of the
// paper's evaluation (§7); each prints the same rows/series the paper
// reports via testing.B metrics and -v logs. Run the full set with
//
//	go test -bench=. -benchmem
//
// and see cmd/occamy-bench for the formatted report (EXPERIMENTS.md records
// the paper-vs-measured comparison).

import (
	"context"
	"fmt"
	"testing"

	"occamy/internal/arch"
	"occamy/internal/area"
	"occamy/internal/coproc"
	"occamy/internal/experiments"
	"occamy/internal/isa"
	"occamy/internal/lanemgr"
	"occamy/internal/roofline"
	"occamy/internal/sim"
	"occamy/internal/traffic"
	"occamy/internal/workload"
)

// benchCfg keeps bench iterations affordable while preserving shape; the
// committed EXPERIMENTS.md numbers come from full-scale occamy-bench runs.
func benchCfg() experiments.Config {
	c := experiments.Default()
	c.Scale = 0.25
	return c
}

// BenchmarkFigure2_MotivatingExample regenerates the §2 example: the four
// architectures on WL#0 (memory, two phases) + WL#1 (compute).
func BenchmarkFigure2_MotivatingExample(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := benchCfg().Figure2()
		if err != nil {
			b.Fatal(err)
		}
		base := f.Results[arch.Private]
		occ := f.Results[arch.Occamy]
		b.ReportMetric(float64(base.Cores[1].Cycles)/float64(occ.Cores[1].Cycles), "occamy-WL1-speedup")
		b.ReportMetric(100*occ.Utilization, "occamy-util-%")
	}
}

// BenchmarkFigure10_Speedups regenerates the 25-pair speedup sweep.
func BenchmarkFigure10_Speedups(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sw, err := benchCfg().Sweep(false)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(sw.GeomeanSpeedup(arch.FTS, 1), "FTS-c1-GM-x")
		b.ReportMetric(sw.GeomeanSpeedup(arch.VLS, 1), "VLS-c1-GM-x")
		b.ReportMetric(sw.GeomeanSpeedup(arch.Occamy, 1), "Occamy-c1-GM-x")
		b.ReportMetric(sw.GeomeanSpeedup(arch.Occamy, 0), "Occamy-c0-GM-x")
		if b.N == 1 {
			b.Log("\n" + experiments.RenderFigure10(sw))
		}
	}
}

// BenchmarkFigure11_SIMDUtilization regenerates the utilization sweep.
func BenchmarkFigure11_SIMDUtilization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sw, err := benchCfg().Sweep(false)
		if err != nil {
			b.Fatal(err)
		}
		for _, k := range arch.Kinds {
			b.ReportMetric(100*sw.GeomeanUtilization(k), k.String()+"-util-%")
		}
	}
}

// BenchmarkFigure12_AreaBreakdown regenerates the area model (analytical;
// the "workload" is the model evaluation itself).
func BenchmarkFigure12_AreaBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := area.Figure12()
		b.ReportMetric(f[arch.Private], "private-mm2")
		b.ReportMetric(f[arch.Occamy], "occamy-mm2")
	}
}

// BenchmarkFigure13_RenameStalls regenerates the register-stall study.
func BenchmarkFigure13_RenameStalls(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sw, err := benchCfg().Sweep(false)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*sw.GeomeanRenameStalls(arch.FTS), "FTS-stall-%")
		b.ReportMetric(100*sw.GeomeanRenameStalls(arch.Private), "Private-stall-%")
	}
}

// BenchmarkFigure14_CaseStudy regenerates the WL20+WL17 case study.
func BenchmarkFigure14_CaseStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := benchCfg().Figure14()
		if err != nil {
			b.Fatal(err)
		}
		// The knee: WL17 keeps scaling at 28 lanes, the memory phases
		// flatten (normalized time at 28 vs 16 lanes).
		wl17 := f.NormalizedTimes["WL17(wsm52)"]
		p1 := f.NormalizedTimes["WL20.p1(sff2)"]
		b.ReportMetric(p1[3]/p1[6], "WL20p1-flatness")
		b.ReportMetric(wl17[3]/wl17[6], "WL17-scaling")
		if b.N == 1 {
			b.Log("\n" + f.Render())
		}
	}
}

// BenchmarkTable5_AttainablePerformance regenerates the roofline table.
func BenchmarkTable5_AttainablePerformance(b *testing.B) {
	m := roofline.Default()
	oi := isa.OIPair{Issue: 1.0 / 6.0, Mem: 0.25}
	for i := 0; i < b.N; i++ {
		for g := 1; g <= 8; g++ {
			_ = m.Attainable(g, oi)
		}
	}
	b.ReportMetric(m.Attainable(1, oi), "AP-4lanes-GFLOPs")
	b.ReportMetric(m.Attainable(3, oi), "AP-12lanes-GFLOPs")
}

// BenchmarkFigure15_Overhead regenerates the elastic-sharing overhead sweep.
func BenchmarkFigure15_Overhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sw, err := benchCfg().Sweep(false)
		if err != nil {
			b.Fatal(err)
		}
		m, g := sw.MeanOverhead()
		b.ReportMetric(100*m, "monitor-%")
		b.ReportMetric(100*g, "reconfig-%")
	}
}

// BenchmarkFigure16_FourCoreScalability regenerates the §7.6 study.
func BenchmarkFigure16_FourCoreScalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := benchCfg().Figure16()
		if err != nil {
			b.Fatal(err)
		}
		// Occamy's compute-core win on the second group (two pairs).
		b.ReportMetric(f.Speedup("4c:WL21+20+17+17", arch.Occamy, 2), "occamy-c2-x")
		b.ReportMetric(f.Speedup("4c:WL21+20+17+17", arch.Occamy, 3), "occamy-c3-x")
		if b.N == 1 {
			b.Log("\n" + f.Render())
		}
	}
}

// BenchmarkAblation_MonitorPeriod measures the Fig. 9 monitor polling knob.
func BenchmarkAblation_MonitorPeriod(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := benchCfg().AblationMonitorPeriod([]int{1, 4, 16, 64}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_IssueCeiling measures lane plans with/without Eq. 2.
func BenchmarkAblation_IssueCeiling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.AblationIssueCeiling()
	}
}

// BenchmarkDSE_MachineSweeps regenerates the design-space exploration
// tables: DRAM bandwidth, vector-cache capacity and FP pipeline depth swept
// around the Table 4 point on the motivating pair (see EXPERIMENTS.md
// "Extensions").
func BenchmarkDSE_MachineSweeps(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := benchCfg().DSEDefaults(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLanePartitioner measures the §5.2 greedy planner itself (the
// hardware does this at every phase-changing point, so it must be cheap).
func BenchmarkLanePartitioner(b *testing.B) {
	m := roofline.Default()
	ois := []isa.OIPair{{Issue: 0.09, Mem: 0.12}, {Issue: 1, Mem: 1}, {Issue: 0.25, Mem: 0.25}, {Issue: 0.5, Mem: 0.6}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = lanemgr.Plan(m, ois, 16)
	}
}

// BenchmarkSimulatorThroughput measures raw simulation speed (cycles/s) on
// the motivating pair under Occamy.
func BenchmarkSimulatorThroughput(b *testing.B) {
	cfg := DefaultConfig(Elastic)
	cfg.Scale = 0.25
	cfg.Verify = false
	var cycles uint64
	for i := 0; i < b.N; i++ {
		rep, err := Run(cfg, MotivatingPair())
		if err != nil {
			b.Fatal(err)
		}
		cycles += rep.Cycles
	}
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "sim-cycles/s")
}

// BenchmarkEngineSkipAhead compares the legacy every-cycle tick loop against
// the hybrid skip-ahead engine. Both modes produce bit-identical results
// (see internal/arch TestEngineSkipAheadBitIdentical); only wall time
// differs. Three scenarios bracket the engine's payoff:
//
//   - Pair: the full motivating pair (WL20+WL21 co-run) on the Table 4
//     machine. Co-runs keep at least one core live most cycles, so this is
//     the engine's worst case — skip-ahead must at least not lose.
//
//   - MemPhase: the motivating pair's memory-bound phase in isolation
//     (solo WL20, the Figure 2 workload whose LHQ-limited DRAM streaming
//     motivates the ISSUE). Quiescent stall windows appear whenever the
//     load queue drains against DRAM.
//
//   - MemPhaseSlowDRAM: the same phase on a latency-dominated memory
//     system (600-cycle DRAM, 2 B/cycle — a far-memory/CXL-class DSE
//     point). Stall windows stretch to hundreds of cycles and skip-ahead
//     elides almost all of them; this is where the ≥2x win lives.
//
//     go test -bench=EngineSkipAhead -count=5
func BenchmarkEngineSkipAhead(b *testing.B) {
	run := func(b *testing.B, legacy bool, sched Schedule, m *MachineTuning) {
		cfg := DefaultConfig(Elastic)
		cfg.Scale = 0.25
		cfg.Verify = false
		cfg.LegacyTick = legacy
		cfg.Machine = m
		var cycles uint64
		for i := 0; i < b.N; i++ {
			rep, err := Run(cfg, sched)
			if err != nil {
				b.Fatal(err)
			}
			cycles += rep.Cycles
		}
		b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "sim-cycles/s")
	}
	memPhase := NewSchedule("solo:WL20", WorkloadByName("spec/WL20"))
	slowDRAM := &MachineTuning{DRAMLatencyCycles: 600, DRAMBytesPerCycle: 2}
	b.Run("Pair/Legacy", func(b *testing.B) { run(b, true, MotivatingPair(), nil) })
	b.Run("Pair/Skip", func(b *testing.B) { run(b, false, MotivatingPair(), nil) })
	b.Run("MemPhase/Legacy", func(b *testing.B) { run(b, true, memPhase, nil) })
	b.Run("MemPhase/Skip", func(b *testing.B) { run(b, false, memPhase, nil) })
	b.Run("MemPhaseSlowDRAM/Legacy", func(b *testing.B) { run(b, true, memPhase, slowDRAM) })
	b.Run("MemPhaseSlowDRAM/Skip", func(b *testing.B) { run(b, false, memPhase, slowDRAM) })
}

// BenchmarkSteadyStateTick measures the warm per-cycle cost of each
// architecture — ns/op IS ns per simulated cycle — and, with -benchmem, the
// hot path's allocation contract (must be 0 allocs/op; internal/arch
// TestSteadyStateZeroAlloc enforces the same bound exactly).
//
// The system is built and warmed once, outside the timer, with skip-ahead
// off so every iteration is a real tick. A checkpoint taken at the warm
// point recycles the system whenever the workload nears completion, so b.N
// can exceed the workload length without measuring post-completion idle
// cycles. The recycle restore runs outside the timer (StopTimer/StartTimer):
// it is harness housekeeping, not steady-state work, and since the restore
// path gained snapshot-integrity verification (a full digest walk per
// restore) leaving it timed would smear an amortized verify into the
// per-cycle numbers this gate exists to pin down.
//
// CI gates on this benchmark: cmd/occamy-benchgate compares ns/op against
// the committed BENCH_PR10.json baseline (±10%) and fails on any nonzero
// allocs/op. Refresh the baseline with:
//
//	go test -run xxx -bench SteadyStateTick -benchmem -count 3 . |
//	    go run ./cmd/occamy-benchgate -baseline BENCH_PR10.json -update
func BenchmarkSteadyStateTick(b *testing.B) {
	group := steadyGroup()
	const warm, recycle = 2001, 20_000
	for _, kind := range arch.Kinds {
		b.Run(kind.String(), func(b *testing.B) {
			sys, err := arch.Build(kind, group, arch.Options{Seed: 5})
			if err != nil {
				b.Fatal(err)
			}
			sys.Engine.SetSkipAhead(false)
			if err := sys.RunTo(warm); err != nil {
				b.Fatal(err)
			}
			snap := sys.Checkpoint()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if sys.Engine.Cycle() >= recycle {
					b.StopTimer()
					if err := sys.RestoreCheckpoint(snap); err != nil {
						b.Fatal(err)
					}
					b.StartTimer()
				}
				sys.Engine.Step()
			}
		})
	}
}

// steadyGroup is the 2-core co-run the steady-state tick benchmarks measure:
// a long dense dot-product stream against a triad, long enough that a warm
// checkpoint can be recycled for tens of thousands of real ticks.
func steadyGroup() workload.CoSchedule {
	reg := workload.NewRegistry()
	dot := *reg.Kernel("dotProd")
	dot.Elems, dot.Repeats = 2000, 30
	tri := *reg.Kernel("wsm51")
	tri.Elems, tri.Repeats = 512, 30
	return workload.CoSchedule{Name: "steady", W: []*workload.Workload{
		{Name: "steady.dot", Phases: []*workload.Kernel{&dot}},
		{Name: "steady.tri", Phases: []*workload.Kernel{&tri}},
	}}
}

// steadyBatchTask adapts the steady-state workload to sim.Task for
// BenchmarkBatchTick: every segment replays the same span of warm dense
// execution (restored from a checkpoint between segments), and the shared
// countdown retires the task once the batch has simulated enough aggregate
// cycles for the harness's b.N.
type steadyBatchTask struct {
	sys     *arch.System
	snap    *arch.SystemState
	label   string
	span    uint64
	target  uint64
	started bool
	left    *int // shared remaining-segment countdown
}

func (t *steadyBatchTask) Engine() *sim.Engine { return t.sys.Engine }
func (t *steadyBatchTask) Label() string       { return t.label }

func (t *steadyBatchTask) Begin(prev error) (func() bool, uint64, error) {
	if prev != nil {
		return nil, 0, prev
	}
	if *t.left <= 0 {
		return nil, 0, nil
	}
	*t.left--
	if t.started {
		t.sys.RestoreCheckpointTrusted(t.snap)
	}
	t.started = true
	t.target = t.sys.Engine.Cycle() + t.span
	return t.done, 2 * t.span, nil
}

func (t *steadyBatchTask) done() bool { return t.sys.Engine.Cycle() >= t.target }

// BenchmarkBatchTick measures the lockstep batch engine's warm per-cycle
// cost: K independent warm systems stepped round-robin through sim.Batch in
// DefaultQuantum slices. ns/op is ns per aggregate simulated cycle — directly
// comparable to BenchmarkSteadyStateTick's per-system number, so B1 exposes
// the batching overhead (it must be negligible) and B4 the cache-sharing
// effect. allocs/op must stay 0: steady-state batch ticking allocates
// nothing per cycle (admission, label contexts and the rare per-segment
// checkpoint recycle amortize to zero).
//
// CI gates this family alongside SteadyStateTick (see cmd/occamy-benchgate).
func BenchmarkBatchTick(b *testing.B) {
	const warm, span = 2001, 8192
	run := func(b *testing.B, kind arch.Kind, group workload.CoSchedule, k int) {
		left := (b.N + span - 1) / span
		batch := sim.NewBatch(context.Background(), "bench")
		for i := 0; i < k; i++ {
			sys, err := arch.Build(kind, group, arch.Options{Seed: uint64(5 + i)})
			if err != nil {
				b.Fatal(err)
			}
			sys.Engine.SetSkipAhead(false)
			if err := sys.RunTo(warm); err != nil {
				b.Fatal(err)
			}
			t := &steadyBatchTask{
				sys: sys, snap: sys.Checkpoint(), span: span, left: &left,
				label: fmt.Sprintf("%s/b%d", kind, i),
			}
			if err := batch.Add(t); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		if err := batch.Run(0); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		b.ReportMetric(float64(batch.Cycles())/b.Elapsed().Seconds(), "sim-cycles/s")
	}
	for _, kind := range arch.Kinds {
		for _, k := range []int{1, 4} {
			b.Run(fmt.Sprintf("%s/B%d", kind, k), func(b *testing.B) {
				run(b, kind, steadyGroup(), k)
			})
		}
	}
	// The ISSUE's headline point: the Figure 2 motivating pair (WL20+WL21),
	// batched, on the elastic machine.
	b.Run("Fig2Pair/Occamy/B4", func(b *testing.B) {
		run(b, arch.Occamy, workload.MotivatingPair(workload.NewRegistry()), 4)
	})
}

// BenchmarkSweepWallClock measures whole-sweep wall clock on the batched
// execution shape the campaign runner uses (-j 1 -batch 8): the degradation
// study and a small hierarchical scalability slice. These gate end-to-end
// sweep throughput — construction, checkpoint forking, verification and
// rendering included — so cmd/occamy-benchgate compares them against the
// baseline with a wider tolerance than the per-tick gates (-sweep /
// -sweeptolerance) and exempts them from the zero-allocation contract.
func BenchmarkSweepWallClock(b *testing.B) {
	b.Run("DegradationBatched", func(b *testing.B) {
		cfg := experiments.Quick()
		cfg.Parallel = 1
		cfg.Batch = 8
		for i := 0; i < b.N; i++ {
			if _, err := cfg.Degradation(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("ScaleBatched", func(b *testing.B) {
		cfg := experiments.Quick()
		cfg.Parallel = 1
		cfg.Batch = 8
		for i := 0; i < b.N; i++ {
			if _, err := cfg.Scalability([]int{4, 8}, []int{1, 2}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSteadyStateTickTopo64 is the clustered counterpart: the headline
// 64-core machine over 4 co-processor clusters behind the routed fabric
// (hop latency 2, 8 transmits/cluster/cycle). ns/op is ns per simulated
// cycle of the whole 64-core machine; allocs/op must stay 0 — the same
// contract internal/arch TestSteadyStateZeroAllocTopo64 enforces exactly.
// The name shares the SteadyStateTick prefix so the CI benchmark gate
// (-bench SteadyStateTick) covers both machines.
func BenchmarkSteadyStateTickTopo64(b *testing.B) {
	reg := workload.NewRegistry()
	names := []string{"dotProd", "wsm51", "rho_eos1", "rgb2hsv"}
	group := workload.CoSchedule{Name: "steady64"}
	for c := 0; c < 64; c++ {
		k := *reg.Kernel(names[c%len(names)])
		k.Elems, k.Repeats = 512+64*(c%4), 20
		group.W = append(group.W, &workload.Workload{
			Name: fmt.Sprintf("steady64.c%d", c), Phases: []*workload.Kernel{&k},
		})
	}
	const warm, recycle = 2001, 20_000
	for _, kind := range arch.Kinds {
		b.Run(kind.String(), func(b *testing.B) {
			sys, err := arch.Build(kind, group, arch.Options{
				Seed:     5,
				Topology: &coproc.Topology{Clusters: 4, HopLatency: 2, HopBandwidth: 8},
			})
			if err != nil {
				b.Fatal(err)
			}
			sys.Engine.SetSkipAhead(false)
			if err := sys.RunTo(warm); err != nil {
				b.Fatal(err)
			}
			snap := sys.Checkpoint()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if sys.Engine.Cycle() >= recycle {
					b.StopTimer()
					if err := sys.RestoreCheckpoint(snap); err != nil {
						b.Fatal(err)
					}
					b.StartTimer()
				}
				sys.Engine.Step()
			}
		})
	}
}

// BenchmarkSteadyStateTickTraffic measures the warm per-cycle cost with the
// open-loop traffic layer active: Poisson arrivals, tenant churn and the
// preemptive osched scheduler all ticking alongside the cores. ns/op is ns
// per simulated cycle of the loaded machine; allocs/op must stay 0 — the
// arrival engine's rings, task contexts and vector save buffers are all
// preallocated (internal/traffic TestSteadyStateZeroAllocTraffic enforces
// the same bound exactly, per architecture). The name shares the
// SteadyStateTick prefix so the CI benchmark gate (-bench SteadyStateTick)
// covers the traffic path too.
func BenchmarkSteadyStateTickTraffic(b *testing.B) {
	spec, err := traffic.ParseSpec(
		"poisson:load=16,tenants=3,cores=2,horizon=6000,slice=300,elems=128,repeats=1,churn=500:700,maxtasks=4096")
	if err != nil {
		b.Fatal(err)
	}
	const warm, recycle = 2001, 5_000
	for _, kind := range arch.Kinds {
		b.Run(kind.String(), func(b *testing.B) {
			sc, err := traffic.Build(kind, spec, arch.Options{Seed: 19})
			if err != nil {
				b.Fatal(err)
			}
			sc.Sys.Engine.SetSkipAhead(false)
			if _, err := sc.Sys.Engine.RunUntil(func() bool { return sc.Sys.Engine.Cycle() >= warm }, 1_000_000); err != nil {
				b.Fatal(err)
			}
			snap := sc.Snapshot()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if sc.Sys.Engine.Cycle() >= recycle {
					b.StopTimer()
					if err := sc.RestoreSnapshot(snap); err != nil {
						b.Fatal(err)
					}
					b.StartTimer()
				}
				sc.Sys.Engine.Step()
			}
		})
	}
}

// BenchmarkDegradationSweep measures the checkpoint/restore payoff on the
// sweep that motivates it: every point of the fault-degradation study shares
// a warm-up prefix, which Snapshot runs once per architecture and forks,
// while NoSnapshot re-simulates from cycle zero for every point. Results are
// bit-identical (TestDegradationSnapshotPathIdentical); only wall time
// differs. Run serially (-j 1 inside the config) so the ratio reflects
// simulated work, not scheduling:
//
//	go test -bench DegradationSweep -benchtime 3x .
func BenchmarkDegradationSweep(b *testing.B) {
	run := func(b *testing.B, nosnap bool) {
		cfg := experiments.Quick()
		cfg.Parallel = 1
		cfg.NoSnapshot = nosnap
		for i := 0; i < b.N; i++ {
			if _, err := cfg.Degradation(); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("Snapshot", func(b *testing.B) { run(b, false) })
	b.Run("NoSnapshot", func(b *testing.B) { run(b, true) })
}

// BenchmarkObsOverhead guards the observability layer's cost contract: with
// profiling off, the probes must stay nil (no per-cycle work beyond a nil
// check), so Off should run within a few percent of the pre-observability
// simulator; On pays for full cycle attribution. Compare the two:
//
//	go test -bench=ObsOverhead -count=5
func BenchmarkObsOverhead(b *testing.B) {
	run := func(b *testing.B, profile bool) {
		cfg := DefaultConfig(Elastic)
		cfg.Scale = 0.25
		cfg.Verify = false
		cfg.Profile = profile
		var cycles uint64
		for i := 0; i < b.N; i++ {
			rep, err := Run(cfg, MotivatingPair())
			if err != nil {
				b.Fatal(err)
			}
			cycles += rep.Cycles
		}
		b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "sim-cycles/s")
	}
	b.Run("Off", func(b *testing.B) { run(b, false) })
	b.Run("On", func(b *testing.B) { run(b, true) })
}
