// Command occamy-benchgate gates CI on benchmark regressions. It reads
// `go test -bench` output on stdin, extracts ns/op and allocs/op per
// benchmark (taking the fastest of repeated -count runs, the standard way to
// suppress scheduling noise), and enforces two contracts:
//
//  1. Hard zero-allocation gate: every benchmark that reports allocs/op and
//     matches -zeroalloc must report exactly 0 — the simulator's steady
//     state is allocation-free by design (DESIGN.md "Performance") and any
//     nonzero value is a regression, not noise.
//
//  2. Throughput gate: ns/op must stay within -tolerance (default ±10%) of
//     the committed baseline. Faster-than-baseline results outside the band
//     are reported too — they mean the baseline is stale and should be
//     refreshed with -update.
//
//  3. Whole-sweep wall-clock gate: benchmarks matching -sweep are end-to-end
//     sweep timings (construction, checkpoint forking, verification and
//     rendering included, e.g. BenchmarkSweepWallClock). They gate against
//     the same baseline but with the wider -sweeptolerance band — whole-run
//     wall clock is noisier than a warm per-tick loop — and are exempt from
//     the zero-allocation contract, which is a steady-state property.
//
// Usage:
//
//	go test -run xxx -bench 'SteadyStateTick|BatchTick' -benchmem -count 3 . |
//	    occamy-benchgate -baseline BENCH_PR10.json           # gate
//	go test ... | occamy-benchgate -baseline BENCH_PR10.json -update
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Baseline is the committed reference file. Ns/op is the fastest observed
// iteration time; AllocsPerOp is recorded for reference (the gate itself is
// "exactly zero", independent of the baseline).
type Baseline struct {
	// Note records where the numbers came from; informational only.
	Note       string               `json:"note,omitempty"`
	Benchmarks map[string]BenchLine `json:"benchmarks"`
}

// BenchLine is one benchmark's reference numbers.
type BenchLine struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// benchRe matches the name field of a benchmark result line; the trailing
// -N GOMAXPROCS suffix is stripped so names are machine-independent.
var benchRe = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+(.*)$`)

// parse extracts {name -> best line} from go-test bench output. Metric
// fields come in "value unit" pairs after the iteration count.
func parse(r *bufio.Scanner) (map[string]BenchLine, error) {
	got := map[string]BenchLine{}
	seen := map[string]bool{}
	for r.Scan() {
		m := benchRe.FindStringSubmatch(r.Text())
		if m == nil {
			continue
		}
		name := strings.TrimPrefix(m[1], "Benchmark")
		fields := strings.Fields(m[2])
		var line BenchLine
		hasNs := false
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("%s: bad metric value %q", name, fields[i])
			}
			switch fields[i+1] {
			case "ns/op":
				line.NsPerOp, hasNs = v, true
			case "allocs/op":
				line.AllocsPerOp = v
			}
		}
		if !hasNs {
			continue
		}
		if best, ok := got[name]; !ok || line.NsPerOp < best.NsPerOp {
			got[name] = line
		} else {
			// Keep the fastest time but never drop an alloc report: any
			// repeat that allocated should fail the hard gate.
			if line.AllocsPerOp > best.AllocsPerOp {
				best.AllocsPerOp = line.AllocsPerOp
				got[name] = best
			}
		}
		seen[name] = true
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	if len(got) == 0 {
		return nil, fmt.Errorf("no benchmark result lines on stdin")
	}
	return got, nil
}

func sortedNames(m map[string]BenchLine) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func main() {
	var (
		basePath  = flag.String("baseline", "BENCH_PR10.json", "committed baseline JSON")
		update    = flag.Bool("update", false, "rewrite the baseline from stdin instead of gating")
		tolerance = flag.Float64("tolerance", 0.10, "allowed relative ns/op drift vs baseline")
		sweep     = flag.String("sweep", "SweepWallClock|DegradationSweep", "regexp of whole-sweep wall-clock benchmarks: gated with -sweeptolerance, exempt from -zeroalloc")
		sweepTol  = flag.Float64("sweeptolerance", 0.30, "allowed relative ns/op drift for -sweep benchmarks")
		zeroalloc = flag.String("zeroalloc", ".", "regexp of benchmarks whose allocs/op must be exactly 0")
		note      = flag.String("note", "", "provenance note to store with -update")
	)
	flag.Parse()
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "occamy-benchgate: "+format+"\n", args...)
		os.Exit(1)
	}

	got, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fail("%v", err)
	}

	if *update {
		b := Baseline{Note: *note, Benchmarks: got}
		if b.Note == "" {
			b.Note = "fastest of repeated runs; refresh on the CI runner class that gates"
		}
		data, err := json.MarshalIndent(&b, "", "  ")
		if err != nil {
			fail("%v", err)
		}
		if err := os.WriteFile(*basePath, append(data, '\n'), 0o644); err != nil {
			fail("%v", err)
		}
		fmt.Printf("wrote %s (%d benchmarks)\n", *basePath, len(got))
		return
	}

	zre, err := regexp.Compile(*zeroalloc)
	if err != nil {
		fail("-zeroalloc: %v", err)
	}
	sre, err := regexp.Compile(*sweep)
	if err != nil {
		fail("-sweep: %v", err)
	}
	data, err := os.ReadFile(*basePath)
	if err != nil {
		fail("%v (run with -update to create it)", err)
	}
	var base Baseline
	if err := json.Unmarshal(data, &base); err != nil {
		fail("%s: %v", *basePath, err)
	}

	bad := 0
	for _, name := range sortedNames(got) {
		line := got[name]
		isSweep := sre.MatchString(name)
		if !isSweep && zre.MatchString(name) && line.AllocsPerOp != 0 {
			fmt.Printf("FAIL %-40s %g allocs/op, want 0 (hard gate)\n", name, line.AllocsPerOp)
			bad++
		}
		ref, ok := base.Benchmarks[name]
		if !ok {
			fmt.Printf("note %-40s not in baseline (add with -update)\n", name)
			continue
		}
		tol := *tolerance
		if isSweep {
			tol = *sweepTol
		}
		drift := (line.NsPerOp - ref.NsPerOp) / ref.NsPerOp
		if drift > tol {
			fmt.Printf("FAIL %-40s %.1f ns/op vs baseline %.1f (%+.1f%%, limit %+.0f%%)\n",
				name, line.NsPerOp, ref.NsPerOp, 100*drift, 100*tol)
			bad++
		} else if drift < -tol {
			fmt.Printf("note %-40s %.1f ns/op vs baseline %.1f (%+.1f%%) — faster; refresh the baseline\n",
				name, line.NsPerOp, ref.NsPerOp, 100*drift)
		} else {
			fmt.Printf("ok   %-40s %.1f ns/op vs baseline %.1f (%+.1f%%), %g allocs/op\n",
				name, line.NsPerOp, ref.NsPerOp, 100*drift, line.AllocsPerOp)
		}
	}
	for _, name := range sortedNames(base.Benchmarks) {
		if _, ok := got[name]; !ok {
			fmt.Printf("FAIL %-40s in baseline but missing from this run\n", name)
			bad++
		}
	}
	if bad > 0 {
		fail("%d gate failure(s)", bad)
	}
}
