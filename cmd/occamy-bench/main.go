// Command occamy-bench regenerates every table and figure of the paper's
// evaluation (§7) and prints a consolidated report — the source of the
// numbers recorded in EXPERIMENTS.md.
//
// Usage:
//
//	occamy-bench                 # everything, full scale
//	occamy-bench -exp fig10      # one experiment
//	occamy-bench -scale 0.25     # quick approximate pass
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"occamy/internal/area"
	"occamy/internal/experiments"
	"occamy/internal/profiling"
	"occamy/internal/sim"
	"occamy/internal/telemetry"
)

func main() {
	var (
		exp    = flag.String("exp", "all", "experiment: table3|table4|fig2|fig10|fig11|fig12|fig13|fig14|table5|fig15|fig16|topdown|ablations|dse|degradation|traffic|all, or scale (hierarchical 4→64-core sweep; never part of all)")
		tspec  = flag.String("traffic-spec", "", "base arrival-process spec for -exp traffic (\"\" = the default 4-tenant Poisson mix; the load= field is swept)")
		tfault = flag.Bool("faults", false, "double the -exp traffic sweep with a transient-fault variant (2 ExeBUs lost through the middle half of the horizon)")
		scale  = flag.Float64("scale", 1.0, "trip-count scale")
		seed   = flag.Uint64("seed", 1, "workload data seed")
		html   = flag.String("html", "", "write a self-contained HTML report (SVG charts) to this file and exit")
		par    = flag.Int("j", 0, "max concurrent simulations in sweeps (0 = one per CPU)")
		batch  = flag.Int("batch", 0, "lockstep-batch up to N sweep points per worker (0 or 1 = sequential; results are bit-identical)")
		leg    = flag.Bool("legacy-tick", false, "force the every-cycle engine path (disable skip-ahead; results are bit-identical)")
		nosnap = flag.Bool("nosnapshot", false, "run every sweep point independently from cycle zero instead of forking shared warm-up from a checkpoint (A/B validation; results are bit-identical)")
		teleA  = flag.String("telemetry", "", "serve live telemetry for the campaign's runs on this address: GET /metrics (OpenMetrics), /events (JSONL), /stream (SSE)")
		teleW  = flag.Uint64("telemetry-window", 0, "telemetry sampling window in sim cycles (0 = default 4096)")
		cpuPr  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memPr  = flag.String("memprofile", "", "write a heap profile to this file")
		allocs = flag.Bool("allocs", false, "print an allocation/GC report for the run to stderr")
	)
	flag.Parse()

	cfg := experiments.Default()
	cfg.Scale = *scale
	cfg.Seed = *seed
	cfg.Parallel = *par
	cfg.LegacyTick = *leg
	cfg.NoSnapshot = *nosnap
	cfg.Batch = *batch

	// SIGINT cancels outstanding simulations cooperatively: every engine
	// stops at its next poll point, the section in flight reports the
	// cancellation, and the campaign exits with a clear marker — sections
	// already printed above it are complete and trustworthy.
	interrupt := make(chan struct{})
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt)
	go func() {
		<-sigCh
		fmt.Fprintln(os.Stderr, "occamy-bench: SIGINT: canceling outstanding runs...")
		close(interrupt)
		signal.Stop(sigCh) // a second ^C kills the process the normal way
	}()
	cfg.Interrupt = interrupt

	want := func(name string) bool { return *exp == "all" || strings.EqualFold(*exp, name) }
	fail := func(err error) {
		var cerr *sim.CanceledError
		if errors.As(err, &cerr) {
			fmt.Println("\nINTERRUPTED — campaign canceled by SIGINT.")
			fmt.Println("Sections printed above completed before the interrupt; the")
			fmt.Println("section in flight was canceled and is not reported.")
			os.Exit(130)
		}
		fmt.Fprintln(os.Stderr, "occamy-bench:", err)
		os.Exit(1)
	}

	if *teleA != "" {
		srv := telemetry.NewServer()
		if err := srv.Start(*teleA); err != nil {
			fail(err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "telemetry: serving on http://%s (/metrics, /events, /stream)\n", srv.Addr())
		cfg.Telemetry = srv
		cfg.TelemetryWindow = *teleW
	}

	prof, err := profiling.Start(*cpuPr, *memPr, *allocs)
	if err != nil {
		fail(err)
	}
	defer func() {
		if err := prof.Stop(); err != nil {
			fail(err)
		}
	}()

	if *html != "" {
		file, err := os.Create(*html)
		if err != nil {
			fail(err)
		}
		if err := cfg.HTMLReport(file); err != nil {
			fail(err)
		}
		if err := file.Close(); err != nil {
			fail(err)
		}
		fmt.Println("wrote", *html)
		return
	}
	section := func(s string) { fmt.Printf("\n%s\n%s\n\n", s, strings.Repeat("=", len(s))) }
	// aggregate reports a sweep section's simulator throughput: total
	// simulated cycles (skip-ahead included — elided cycles are simulated
	// cycles) over the section's wall clock.
	aggregate := func(cycles uint64, start time.Time) {
		s := time.Since(start).Seconds()
		if cycles == 0 || s <= 0 {
			return
		}
		fmt.Printf("aggregate: %.2fM sim-cycles/s (%d simulated cycles in %.2fs)\n",
			float64(cycles)/s/1e6, cycles, s)
	}

	if want("table3") {
		section("Table 3 — workloads")
		fmt.Println(experiments.RenderTable3())
	}
	if want("table4") {
		section("Table 4 — configuration")
		fmt.Println(experiments.RenderTable4())
	}

	if want("fig2") {
		section("Figure 2 — motivating example")
		t0 := time.Now()
		f, err := cfg.Figure2()
		if err != nil {
			fail(err)
		}
		fmt.Println(f.Render())
		aggregate(f.TotalCycles(), t0)
	}

	needSweep := want("fig10") || want("fig11") || want("fig13") || want("fig15")
	if needSweep {
		section("Figures 10/11/13/15 — 25-pair sweep (4 architectures, verified)")
		t0 := time.Now()
		sw, err := cfg.Sweep(true)
		if err != nil {
			fail(err)
		}
		if want("fig10") {
			fmt.Println(experiments.RenderFigure10(sw))
		}
		if want("fig11") {
			fmt.Println(experiments.RenderFigure11(sw))
		}
		if want("fig13") {
			fmt.Println(experiments.RenderFigure13(sw))
		}
		if want("fig15") {
			fmt.Println(experiments.RenderFigure15(sw))
		}
		aggregate(sw.Totals.Counters["sim.cycles"], t0)
	}

	if want("fig12") {
		section("Figure 12 — area breakdown")
		fmt.Println(area.Render(2, false))
		fmt.Println(area.Render(4, true))
	}

	if want("fig14") || want("table5") {
		section("Figure 14 / Table 5 — case study WL20+WL17")
		if want("fig14") {
			f, err := cfg.Figure14()
			if err != nil {
				fail(err)
			}
			fmt.Println(f.Render())
		}
		if want("table5") {
			fmt.Println(experiments.Table5())
		}
	}

	if want("topdown") {
		section("Top-down cycle attribution — motivating pair, 4 architectures")
		s, err := cfg.TopDownMotivating()
		if err != nil {
			fail(err)
		}
		fmt.Println(s)
	}

	if want("fig16") {
		section("Figure 16 — four-core scalability")
		f, err := cfg.Figure16()
		if err != nil {
			fail(err)
		}
		fmt.Println(f.Render())
	}

	if want("ablations") {
		section("Ablations")
		s, err := cfg.AblationMonitorPeriod([]int{1, 4, 16, 64})
		if err != nil {
			fail(err)
		}
		fmt.Println(s)
		fmt.Println(experiments.AblationIssueCeiling())
		s, err = cfg.AblationFTSRegisters([]int{128, 160, 224, 320})
		if err != nil {
			fail(err)
		}
		fmt.Println(s)
		s, err = cfg.AblationDefaultVL([]int{1, 2, 4})
		if err != nil {
			fail(err)
		}
		fmt.Println(s)
	}

	if want("dse") {
		section("Design-space exploration (machine-parameter sweeps)")
		s, err := cfg.DSEDefaults()
		if err != nil {
			fail(err)
		}
		fmt.Println(s)
	}

	if want("degradation") {
		section("Degradation — throughput retention under failed ExeBUs")
		t0 := time.Now()
		d, err := cfg.Degradation()
		if err != nil {
			fail(err)
		}
		fmt.Println(d.Render())
		aggregate(d.TotalCycles(), t0)
	}

	if want("traffic") {
		section("Traffic — open-loop overload sweep with per-tenant SLOs")
		t0 := time.Now()
		tr, err := cfg.Traffic(*tspec, *tfault)
		if err != nil {
			fail(err)
		}
		fmt.Println(tr.Render())
		aggregate(tr.TotalCycles(), t0)
	}

	// The hierarchical sweep (4→64 cores × 1→4 clusters × 4 architectures =
	// 60 full runs) is opt-in: it extends the paper's evaluation rather than
	// reproducing a figure, and at full scale it dominates the campaign.
	if strings.EqualFold(*exp, "scale") {
		section("Scalability — hierarchical lane management, 4→64 cores")
		t0 := time.Now()
		s, err := cfg.Scalability(nil, nil)
		if err != nil {
			fail(err)
		}
		fmt.Println(s.Render())
		aggregate(s.TotalCycles(), t0)
	}
}
