// Command occamy-serve runs the simulation job service: an HTTP/JSON API
// that accepts pair runs, fault campaigns and traffic scenarios, executes
// them on a bounded worker pool with admission control, per-tenant quotas,
// per-job timeouts and retry with exponential backoff, serves results and
// OpenMetrics, and drains gracefully on SIGTERM/SIGINT.
//
//	occamy-serve -addr 127.0.0.1:9470 -workers 4 -journal jobs.jsonl
//
// Submit:
//
//	curl -s localhost:9470/jobs -d '{"tenant":"t1","kind":"pair",
//	  "arch":"elastic","workloads":["spec/WL20","spec/WL17"],"scale":0.05}'
//
// Poll GET /jobs/{id}, fetch GET /jobs/{id}/result, watch GET /metrics.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"occamy/internal/serve"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:9470", "listen address")
	workers := flag.Int("workers", 2, "worker pool size (concurrent simulations)")
	queueCap := flag.Int("queue", 16, "admission queue capacity")
	quota := flag.Int("tenant-quota", 4, "max in-flight jobs per tenant (<0 disables)")
	attempts := flag.Int("max-attempts", 3, "attempt budget per job")
	timeout := flag.Duration("timeout", 120*time.Second, "default per-attempt deadline")
	backoffBase := flag.Duration("backoff-base", 100*time.Millisecond, "first retry delay")
	backoffCap := flag.Duration("backoff-cap", 5*time.Second, "retry delay ceiling")
	grace := flag.Duration("drain-grace", 10*time.Second, "drain grace before in-flight work is parked")
	cacheCap := flag.Int("cache", 8, "warm-up checkpoint cache capacity (snapshots)")
	journal := flag.String("journal", "", "job journal path (JSONL); empty disables crash recovery")
	inject := flag.Bool("allow-injection", false, "enable test-only fault hooks (never in production)")
	flag.Parse()

	srv, err := serve.New(serve.Options{
		Workers:        *workers,
		QueueCap:       *queueCap,
		TenantQuota:    *quota,
		MaxAttempts:    *attempts,
		DefaultTimeout: *timeout,
		BackoffBase:    *backoffBase,
		BackoffCap:     *backoffCap,
		DrainGrace:     *grace,
		CacheCap:       *cacheCap,
		JournalPath:    *journal,
		AllowInjection: *inject,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "occamy-serve:", err)
		os.Exit(1)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "occamy-serve:", err)
		os.Exit(1)
	}
	hs := &http.Server{Handler: srv.Handler()}
	fmt.Printf("occamy-serve listening on %s (workers=%d queue=%d journal=%q)\n",
		ln.Addr(), *workers, *queueCap, *journal)

	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-sigCh:
		fmt.Printf("occamy-serve: %v: draining (grace %s)\n", sig, *grace)
	case err := <-errCh:
		fmt.Fprintln(os.Stderr, "occamy-serve:", err)
		os.Exit(1)
	}

	// Stop admitting and let in-flight work finish or park, then close the
	// listener. Exit 0 on a clean drain: the journal holds everything that
	// was accepted but not finished.
	if err := srv.Drain(); err != nil {
		fmt.Fprintln(os.Stderr, "occamy-serve: drain:", err)
		os.Exit(1)
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "occamy-serve: shutdown:", err)
		os.Exit(1)
	}
	fmt.Println("occamy-serve: drained cleanly")
}
