// Command occamy-sim runs one pair of co-scheduled workloads on one of the
// four SIMD sharing architectures and prints the paper's per-run metrics.
//
// Usage:
//
//	occamy-sim -arch occamy -w0 spec/WL20 -w1 spec/WL17
//	occamy-sim -arch all -w0 cv/WL6 -w1 cv/WL1 -ascii-timeline
//	occamy-sim -arch occamy -telemetry 127.0.0.1:9464 -timeline run.json
//	occamy-sim -list
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strings"
	"time"

	"occamy"
	"occamy/internal/profiling"
)

// resolveWorkload accepts a Table 3 name or "@file.json" for a custom
// workload definition.
func resolveWorkload(spec string) (occamy.WorkloadRef, error) {
	if strings.HasPrefix(spec, "@") {
		data, err := os.ReadFile(strings.TrimPrefix(spec, "@"))
		if err != nil {
			return occamy.WorkloadRef{}, err
		}
		return occamy.WorkloadFromJSON(data)
	}
	return occamy.WorkloadByName(spec), nil
}

func main() {
	var (
		archName = flag.String("arch", "occamy", "architecture: private|fts|vls|occamy|all")
		w0       = flag.String("w0", "spec/WL20", "workload for Core0 (memory side); @file.json for a custom definition")
		w1       = flag.String("w1", "spec/WL17", "workload for Core1 (compute side); @file.json for a custom definition")
		scale    = flag.Float64("scale", 1.0, "trip-count scale (use <1 for quick runs)")
		seed     = flag.Uint64("seed", 1, "workload data seed")
		timeline = flag.String("timeline", "", "write the run's telemetry windows and event log as Perfetto counter tracks to this JSON file (open in ui.perfetto.dev); with -arch all, the architecture name is appended to the stem")
		asciiTL  = flag.Bool("ascii-timeline", false, "print busy-lane timelines as ascii strips")
		teleAddr = flag.String("telemetry", "", "serve live telemetry on this address (e.g. 127.0.0.1:9464): GET /metrics (OpenMetrics), /events (JSONL), /stream (SSE)")
		teleWin  = flag.Uint64("telemetry-window", 0, "telemetry sampling window in sim cycles (0 = default 4096)")
		teleHold = flag.Duration("telemetry-hold", 0, "keep the telemetry server up this long after the runs finish (interrupt ends the hold early)")
		list     = flag.Bool("list", false, "list available workloads and exit")
		traceDir = flag.String("trace", "", "directory to write JSON/CSV traces into")
		oiTable  = flag.Bool("oi", false, "print each workload's per-phase operational intensities")
		machine  = flag.String("machine", "", "JSON file overriding Table 4 hardware parameters (dram_latency_cycles, vec_cache_kb, phys_regs, ...)")
		profile  = flag.Bool("profile", false, "enable cycle attribution and print the top-down table and latency histograms")
		perfetto = flag.String("perfetto", "", "write a Chrome/Perfetto trace-event JSON file (open in ui.perfetto.dev); with -arch all, the architecture name is appended to the stem")
		stats    = flag.Bool("stats", false, "dump the full sorted counter registry (implies -profile)")
		legacy   = flag.Bool("legacy-tick", false, "force the every-cycle engine path (disable skip-ahead; results are bit-identical)")
		faults   = flag.String("faults", "", `fault-injection spec: "kind[:target...]@at[+for]; ..." (e.g. "exebu:2@10000+5000; xmit:core0@2000+8000"), or @file.json`)
		trafSpec = flag.String("traffic", "", `open-loop traffic spec instead of -w0/-w1: "process:key=value,..." (e.g. "poisson:load=2,tenants=6,churn=8000:20000"); prints the per-tenant SLO report`)
		clusters = flag.Int("clusters", 1, "number of co-processor clusters (1 = the flat machine; cores and ExeBUs must divide evenly over clusters)")
		hopLat   = flag.Uint64("hop-lat", 0, "CPU→coproc fabric hop latency in cycles (0 = direct wiring, bit-identical to the flat machine)")
		hopBW    = flag.Int("hop-bw", 0, "fabric transmissions a cluster accepts per cycle (0 = unlimited)")
		stall    = flag.Uint64("stall-cycles", 0, "abort with a diagnostic dump if no instruction retires for this many cycles (0 = the DefaultConfig watchdog)")
		cpuPr    = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memPr    = flag.String("memprofile", "", "write a heap profile to this file")
		allocs   = flag.Bool("allocs", false, "print an allocation/GC report for the run to stderr")
	)
	flag.Parse()

	if *list {
		for _, name := range occamy.Workloads() {
			fmt.Println(name)
		}
		return
	}

	archs := map[string]occamy.Arch{
		"private": occamy.Private, "fts": occamy.Temporal,
		"vls": occamy.StaticSpatial, "occamy": occamy.Elastic,
	}
	var kinds []occamy.Arch
	if strings.ToLower(*archName) == "all" {
		kinds = occamy.Architectures()
	} else {
		k, ok := archs[strings.ToLower(*archName)]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown architecture %q\n", *archName)
			os.Exit(2)
		}
		kinds = []occamy.Arch{k}
	}

	var tuning *occamy.MachineTuning
	if *machine != "" {
		data, err := os.ReadFile(*machine)
		if err != nil {
			fmt.Fprintf(os.Stderr, "machine: %v\n", err)
			os.Exit(2)
		}
		tuning = new(occamy.MachineTuning)
		dec := json.NewDecoder(strings.NewReader(string(data)))
		dec.DisallowUnknownFields()
		if err := dec.Decode(tuning); err != nil {
			fmt.Fprintf(os.Stderr, "machine %s: %v\n", *machine, err)
			os.Exit(2)
		}
	}

	prof, err := profiling.Start(*cpuPr, *memPr, *allocs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%v\n", err)
		os.Exit(2)
	}
	var teleSrv *occamy.TelemetryServer
	if *teleAddr != "" {
		teleSrv = occamy.NewTelemetryServer()
		if err := teleSrv.Start(*teleAddr); err != nil {
			fmt.Fprintf(os.Stderr, "telemetry: %v\n", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "telemetry: serving on http://%s (/metrics, /events, /stream)\n", teleSrv.Addr())
	}
	if *trafSpec != "" {
		// Open-loop traffic mode: the spec defines the offered work, so the
		// -w0/-w1 schedule path (and its workload resolution) is bypassed.
		for _, kind := range kinds {
			cfg := occamy.DefaultConfig(kind)
			cfg.MaxCycles = 0 // let the spec's horizon size the budget
			cfg.Seed = *seed
			cfg.Machine = tuning
			cfg.LegacyTick = *legacy
			cfg.Faults = *faults
			cfg.Telemetry = teleSrv
			cfg.TelemetryWindow = *teleWin
			cfg.TimelinePath = perfettoPath(*timeline, kind, len(kinds) > 1)
			cfg.Traffic = *trafSpec
			if *clusters != 1 || *hopLat != 0 || *hopBW != 0 {
				cfg.Topology = &occamy.Topology{Clusters: *clusters, HopLatency: *hopLat, HopBandwidth: *hopBW}
			}
			if *stall > 0 {
				cfg.StallCycles = *stall
			}
			if err := cfg.Validate(); err != nil {
				fmt.Fprintf(os.Stderr, "%s\n", err)
				os.Exit(2)
			}
			rep, err := occamy.RunTraffic(cfg)
			if err != nil {
				var derr *occamy.DiagnosticError
				if errors.As(err, &derr) {
					fmt.Fprintln(os.Stderr, derr.Dump)
				}
				fmt.Fprintf(os.Stderr, "%s: %v\n", kind, err)
				os.Exit(1)
			}
			fmt.Printf("=== %s ===\n%s", kind, rep.Summary())
			if cfg.TimelinePath != "" {
				fmt.Printf("telemetry timeline written to %s (open in ui.perfetto.dev)\n", cfg.TimelinePath)
			}
		}
	} else {
		r0, err := resolveWorkload(*w0)
		if err != nil {
			fmt.Fprintf(os.Stderr, "w0: %v\n", err)
			os.Exit(2)
		}
		r1, err := resolveWorkload(*w1)
		if err != nil {
			fmt.Fprintf(os.Stderr, "w1: %v\n", err)
			os.Exit(2)
		}
		sched := occamy.NewSchedule(fmt.Sprintf("%s+%s", r0.Name(), r1.Name()), r0, r1)
		if *oiTable {
			for _, ref := range []occamy.WorkloadRef{r0, r1} {
				fmt.Printf("%s phases (oi_issue, oi_mem): %v\n", ref.Name(), ref.PhaseOIs())
			}
		}
		for _, kind := range kinds {
			cfg := occamy.DefaultConfig(kind)
			cfg.Scale = *scale
			cfg.Seed = *seed
			cfg.TraceDir = *traceDir
			cfg.Machine = tuning
			cfg.Profile = *profile || *stats
			cfg.PerfettoPath = perfettoPath(*perfetto, kind, len(kinds) > 1)
			cfg.LegacyTick = *legacy
			cfg.Faults = *faults
			cfg.Telemetry = teleSrv
			cfg.TelemetryWindow = *teleWin
			cfg.TimelinePath = perfettoPath(*timeline, kind, len(kinds) > 1)
			if *clusters != 1 || *hopLat != 0 || *hopBW != 0 {
				cfg.Topology = &occamy.Topology{Clusters: *clusters, HopLatency: *hopLat, HopBandwidth: *hopBW}
			}
			if *stall > 0 {
				cfg.StallCycles = *stall
			}
			if err := cfg.Validate(); err != nil {
				fmt.Fprintf(os.Stderr, "%s\n", err)
				os.Exit(2)
			}
			rep, err := occamy.Run(cfg, sched)
			if err != nil {
				// A wedged or budget-exhausted run carries a machine-state dump —
				// print it so the user sees *where* it stopped, not just that it
				// stopped.
				var derr *occamy.DiagnosticError
				if errors.As(err, &derr) {
					fmt.Fprintln(os.Stderr, derr.Dump)
				}
				fmt.Fprintf(os.Stderr, "%s: %v\n", kind, err)
				os.Exit(1)
			}
			fmt.Print(rep.Summary())
			if *asciiTL {
				for c := range rep.Cores {
					fmt.Printf("  core%d |%s|\n", c, rep.AsciiTimeline(c, 32))
				}
			}
			if *profile || *stats {
				fmt.Println("\ntop-down cycle attribution:")
				fmt.Print(rep.TopDown())
				for _, h := range rep.Histograms {
					fmt.Print(h)
				}
			}
			if *stats {
				fmt.Println("\ncounters:")
				for _, name := range sortedKeys(rep.Stats) {
					fmt.Printf("  %-40s %d\n", name, rep.Stats[name])
				}
			}
			if cfg.PerfettoPath != "" {
				fmt.Printf("perfetto trace written to %s (open in ui.perfetto.dev)\n", cfg.PerfettoPath)
			}
			if cfg.TimelinePath != "" {
				fmt.Printf("telemetry timeline written to %s (open in ui.perfetto.dev)\n", cfg.TimelinePath)
			}
		}
	}
	if teleSrv != nil {
		if *teleHold > 0 {
			sig := make(chan os.Signal, 1)
			signal.Notify(sig, os.Interrupt)
			fmt.Fprintf(os.Stderr, "telemetry: holding server for %s (interrupt to finish)\n", *teleHold)
			select {
			case <-time.After(*teleHold):
			case <-sig:
			}
		}
		teleSrv.Close()
	}
	if err := prof.Stop(); err != nil {
		fmt.Fprintf(os.Stderr, "%v\n", err)
		os.Exit(2)
	}
}

// perfettoPath derives the per-architecture output path: with -arch all,
// "trace.json" becomes "trace-Occamy.json" etc. so runs don't clobber each
// other.
func perfettoPath(base string, kind occamy.Arch, multi bool) string {
	if base == "" || !multi {
		return base
	}
	stem, ext := base, ""
	if i := strings.LastIndex(base, "."); i > 0 {
		stem, ext = base[:i], base[i:]
	}
	return stem + "-" + kind.String() + ext
}

func sortedKeys(m map[string]uint64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
