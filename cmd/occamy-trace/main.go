// Command occamy-trace turns trace exports into a self-contained HTML page
// with inline SVG charts: the busy-lane timelines, the allocated-lane
// staircase (Figure 2(e)), the per-phase issue rates and the lane manager's
// event log. Traces come from `occamy-sim -trace <dir>` or the library's
// Config.TraceDir.
//
// It also validates telemetry exports against their format contracts, for CI
// smoke checks: Chrome/Perfetto trace-event JSON (from `occamy-sim -perfetto`
// or `-timeline`), OpenMetrics text (from `GET /metrics`), and JSONL event
// logs (from `GET /events`).
//
// Usage:
//
//	occamy-sim -w0 spec/WL20 -w1 spec/WL17 -trace out/
//	occamy-trace -o report.html out/*.json
//	occamy-trace -check-perfetto trace.json
//	occamy-trace -check-openmetrics metrics.txt
//	occamy-trace -check-events events.jsonl
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"occamy/internal/htmlreport"
	"occamy/internal/obs"
	"occamy/internal/telemetry"
	"occamy/internal/trace"
)

// checkFiles validates every argument with check, printing one line per file.
func checkFiles(paths []string, what string, check func(io.Reader) error) {
	for _, path := range paths {
		file, err := os.Open(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "occamy-trace:", err)
			os.Exit(1)
		}
		err = check(file)
		file.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "occamy-trace: %s: %v\n", path, err)
			os.Exit(1)
		}
		fmt.Printf("%s: valid %s\n", path, what)
	}
}

func main() {
	out := flag.String("o", "trace.html", "output HTML file")
	checkPerfetto := flag.Bool("check-perfetto", false,
		"validate the given files as Chrome trace-event JSON (ph/pid/tid/name fields, monotonic ts) instead of rendering HTML")
	checkOM := flag.Bool("check-openmetrics", false,
		"validate the given files as OpenMetrics text (TYPE declarations, counter _total suffixes, # EOF terminator) instead of rendering HTML")
	checkEvents := flag.Bool("check-events", false,
		"validate the given files as telemetry event logs (one JSON object per line with kind and cycle) instead of rendering HTML")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: occamy-trace [-o report.html] run1.json [run2.json ...]")
		fmt.Fprintln(os.Stderr, "       occamy-trace -check-perfetto trace.json [trace2.json ...]")
		fmt.Fprintln(os.Stderr, "       occamy-trace -check-openmetrics metrics.txt [...]")
		fmt.Fprintln(os.Stderr, "       occamy-trace -check-events events.jsonl [...]")
		os.Exit(2)
	}

	switch {
	case *checkPerfetto:
		checkFiles(flag.Args(), "perfetto trace", obs.ValidatePerfetto)
		return
	case *checkOM:
		checkFiles(flag.Args(), "openmetrics exposition", telemetry.ValidateOpenMetrics)
		return
	case *checkEvents:
		checkFiles(flag.Args(), "event log", telemetry.ValidateEventsJSONL)
		return
	}

	page := htmlreport.New("Occamy trace viewer")
	for _, path := range flag.Args() {
		file, err := os.Open(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "occamy-trace:", err)
			os.Exit(1)
		}
		run, err := trace.ReadJSON(file)
		file.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "occamy-trace: %s: %v\n", path, err)
			os.Exit(1)
		}
		run.AddSections(page)
	}

	file, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "occamy-trace:", err)
		os.Exit(1)
	}
	if err := page.Write(file); err != nil {
		fmt.Fprintln(os.Stderr, "occamy-trace:", err)
		os.Exit(1)
	}
	if err := file.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "occamy-trace:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d runs)\n", *out, flag.NArg())
}
