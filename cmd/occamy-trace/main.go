// Command occamy-trace turns trace exports into a self-contained HTML page
// with inline SVG charts: the busy-lane timelines, the allocated-lane
// staircase (Figure 2(e)), the per-phase issue rates and the lane manager's
// event log. Traces come from `occamy-sim -trace <dir>` or the library's
// Config.TraceDir.
//
// It also validates Chrome/Perfetto trace-event exports (from
// `occamy-sim -perfetto`) against the format contract, for CI smoke checks.
//
// Usage:
//
//	occamy-sim -w0 spec/WL20 -w1 spec/WL17 -trace out/
//	occamy-trace -o report.html out/*.json
//	occamy-trace -check-perfetto trace.json
package main

import (
	"flag"
	"fmt"
	"os"

	"occamy/internal/htmlreport"
	"occamy/internal/obs"
	"occamy/internal/trace"
)

func main() {
	out := flag.String("o", "trace.html", "output HTML file")
	checkPerfetto := flag.Bool("check-perfetto", false,
		"validate the given files as Chrome trace-event JSON (ph/pid/tid/name fields, monotonic ts) instead of rendering HTML")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: occamy-trace [-o report.html] run1.json [run2.json ...]")
		fmt.Fprintln(os.Stderr, "       occamy-trace -check-perfetto trace.json [trace2.json ...]")
		os.Exit(2)
	}

	if *checkPerfetto {
		for _, path := range flag.Args() {
			file, err := os.Open(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "occamy-trace:", err)
				os.Exit(1)
			}
			err = obs.ValidatePerfetto(file)
			file.Close()
			if err != nil {
				fmt.Fprintf(os.Stderr, "occamy-trace: %s: %v\n", path, err)
				os.Exit(1)
			}
			fmt.Printf("%s: valid perfetto trace\n", path)
		}
		return
	}

	page := htmlreport.New("Occamy trace viewer")
	for _, path := range flag.Args() {
		file, err := os.Open(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "occamy-trace:", err)
			os.Exit(1)
		}
		run, err := trace.ReadJSON(file)
		file.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "occamy-trace: %s: %v\n", path, err)
			os.Exit(1)
		}
		run.AddSections(page)
	}

	file, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "occamy-trace:", err)
		os.Exit(1)
	}
	if err := page.Write(file); err != nil {
		fmt.Fprintln(os.Stderr, "occamy-trace:", err)
		os.Exit(1)
	}
	if err := file.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "occamy-trace:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d runs)\n", *out, flag.NArg())
}
