// Command occamy-asm assembles and runs hand-written EM-SIMD programs on
// the bare simulated machine: one .s file per core, sharing the elastic
// co-processor. See the isa package's Assemble documentation for the syntax
// and examples/assembly for a protocol walkthrough.
//
// Usage:
//
//	occamy-asm core0.s core1.s            # run two programs
//	occamy-asm -check core0.s             # assemble + disassemble only
//	occamy-asm -events core0.s core1.s    # also dump the lane-event log
package main

import (
	"flag"
	"fmt"
	"os"

	"occamy"
	"occamy/internal/isa"
)

func main() {
	var (
		check     = flag.Bool("check", false, "assemble and print the disassembly without running")
		events    = flag.Bool("events", false, "print the lane-management event log after the run")
		maxCycles = flag.Uint64("max-cycles", 10_000_000, "simulation budget")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: occamy-asm [flags] core0.s [core1.s ...]")
		os.Exit(2)
	}

	var sources []string
	for _, path := range flag.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "occamy-asm:", err)
			os.Exit(1)
		}
		sources = append(sources, string(data))
	}

	if *check {
		for i, src := range sources {
			prog, err := isa.Assemble(flag.Arg(i), src)
			if err != nil {
				fmt.Fprintln(os.Stderr, "occamy-asm:", err)
				os.Exit(1)
			}
			fmt.Printf("; %s — %d instructions\n%s\n", flag.Arg(i), prog.Len(), prog.Disassemble())
		}
		return
	}

	asm, err := occamy.NewAssembly(sources...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "occamy-asm:", err)
		os.Exit(1)
	}
	cycles, err := asm.Run(*maxCycles)
	if err != nil {
		fmt.Fprintln(os.Stderr, "occamy-asm:", err)
		os.Exit(1)
	}
	fmt.Printf("completed in %d cycles\n", cycles)
	for c := range sources {
		fmt.Printf("core%d: VL=%d granules, X0=%d X1=%d X2=%d\n",
			c, asm.VL(c), asm.X(c, 0), asm.X(c, 1), asm.X(c, 2))
	}
	if *events {
		for _, e := range asm.LaneEvents() {
			fmt.Printf("cycle %6d core%d %-12s vl=%d decisions=%v\n",
				e.Cycle, e.Core, e.Kind, e.VL, e.Decisions)
		}
	}
}
