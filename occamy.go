// Package occamy is a pure-Go reproduction of "Occamy: Elastically Sharing a
// SIMD Co-processor across Multiple CPU Cores" (ASPLOS 2023): a cycle-level
// simulator of a multi-core processor attached to a shared SIMD co-processor
// whose 128-bit execution units can be repartitioned between cores at
// runtime, together with the EM-SIMD ISA extension, the roofline-guided
// hardware lane manager, and the elastic vectorizing compiler the paper
// describes.
//
// The public API runs co-scheduled workloads on the paper's four SIMD
// sharing architectures and reports the paper's metrics:
//
//	reg := occamy.Workloads()
//	sched := occamy.PairByName("spec/WL20", "spec/WL17")
//	report, err := occamy.Run(occamy.DefaultConfig(Elastic), sched)
//	fmt.Println(report.Summary())
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-vs-measured record of every table and figure.
package occamy

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"occamy/internal/arch"
	"occamy/internal/coproc"
	"occamy/internal/fault"
	"occamy/internal/isa"
	"occamy/internal/lanemgr"
	"occamy/internal/obs"
	"occamy/internal/roofline"
	"occamy/internal/telemetry"
	"occamy/internal/trace"
	"occamy/internal/traffic"
	"occamy/internal/workload"
)

// Arch selects one of the four SIMD sharing architectures of Figure 1.
type Arch = arch.Kind

// The four architectures, in the paper's presentation order.
const (
	// Private gives each core its own fixed SIMD lanes (Figure 1(a)).
	Private = arch.Private
	// Temporal time-shares the full-width array between cores
	// (Figure 1(b); "FTS" in the evaluation).
	Temporal = arch.FTS
	// StaticSpatial partitions the lanes once, offline (Figure 1(c);
	// "VLS" in the evaluation).
	StaticSpatial = arch.VLS
	// Elastic is the paper's contribution: dynamic spatial sharing via
	// the EM-SIMD execution model (Figure 1(d)).
	Elastic = arch.Occamy
)

// Architectures lists all four in presentation order.
func Architectures() []Arch { return arch.Kinds }

// Config tunes a simulation run.
type Config struct {
	// Arch is the sharing architecture to simulate.
	Arch Arch
	// LanesPerCore sets the SIMD width budget: the co-processor gets
	// 4*LanesPerCore/4... granules per core (Table 4 uses 16 lanes per
	// core, i.e. 32 lanes total for the two-core configuration). Zero
	// means the Table 4 default.
	LanesPerCore int
	// Seed initializes workload data deterministically.
	Seed uint64
	// MonitorPeriod is the number of loop iterations between partition
	// monitor checks in elastic code (default 1, as in Figure 9).
	MonitorPeriod int
	// Scale multiplies workload trip counts (1.0 = the calibrated
	// defaults); use <1 for quick runs.
	Scale float64
	// MaxCycles bounds the simulation (a safety net against livelock;
	// zero means a generous default).
	MaxCycles uint64
	// Verify re-executes every phase on the host after simulation and
	// fails the run if the simulated results diverge.
	Verify bool
	// TraceDir, when non-empty, makes Run write the run's time series and
	// lane-event log there: <sched>-<arch>.json, -timeline.csv and
	// -events.csv (see internal/trace).
	TraceDir string
	// Machine overrides selected Table 4 hardware parameters (nil keeps
	// the defaults); see MachineTuning. Useful for design-space
	// exploration: slower DRAM, smaller vector cache, fewer physical
	// registers, different pipe latencies.
	Machine *MachineTuning
	// Profile enables the cycle-attribution observability layer: every
	// cycle of every core is charged to one top-down bucket (see
	// Report.Attribution and Report.TopDown), latency histograms are
	// collected, and the full counter registry is captured into
	// Report.Stats. Off by default; the instrumented models then keep nil
	// probes and pay only an inlined nil check.
	Profile bool
	// PerfettoPath, when non-empty, writes a Chrome trace-event JSON file
	// of the run (phase slices, reconfiguration drains, lane events,
	// counter tracks) openable in ui.perfetto.dev. Implies Profile.
	PerfettoPath string
	// LegacyTick forces the engine to tick every cycle instead of
	// skip-ahead fast-forwarding over quiescent windows. Results are
	// bit-identical either way; the switch exists for A/B validation and
	// engine benchmarking.
	LegacyTick bool
	// Faults is a fault-injection specification: semicolon-separated
	// entries "kind[:target...]@at[+for]" (see internal/fault; e.g.
	// "exebu:2@10000+5000; link:c0@2000+1000"), or "@file.json" to load a
	// JSON spec. Empty disables injection; fault-free runs are
	// bit-identical to builds without the machinery.
	Faults string
	// StallCycles arms the forward-progress watchdog: if no core retires
	// an instruction and the co-processor issues nothing for this many
	// cycles, the run aborts with a DiagnosticError instead of burning
	// MaxCycles. Zero disables the watchdog.
	StallCycles uint64
	// Telemetry, when non-nil, attaches the run's live sampler to the
	// given server before simulation starts, so GET /metrics, /events and
	// /stream serve fresh windows while the run is in flight. Implies
	// windowed sampling (see TelemetryWindow).
	Telemetry *TelemetryServer
	// TelemetryWindow is the sampling window in cycles; 0 uses the default
	// (4096) when sampling is enabled. Setting it nonzero enables sampling
	// even without a server or timeline path (for Report.Telemetry).
	TelemetryWindow uint64
	// TimelinePath, when non-empty, writes the run's sampled windows and
	// event log as Perfetto counter tracks (Chrome trace-event JSON,
	// openable in ui.perfetto.dev). Implies windowed sampling.
	TimelinePath string
	// Topology shapes the co-processor side of the machine: the number of
	// co-processor clusters (each owning an even shard of the ExeBUs), the
	// fabric group width, and the hop latency/bandwidth of the routed
	// CPU→coproc fabric. Nil keeps the flat single-co-processor machine; a
	// 1-cluster topology with zero hop latency is bit-identical to nil.
	Topology *Topology
	// Traffic selects open-loop traffic-driven simulation instead of a fixed
	// co-schedule: a seeded arrival-process spec
	// "process:key=value,..." (process = poisson|bursty|diurnal; e.g.
	// "poisson:load=2,tenants=6,churn=8000:20000"). Used by RunTraffic;
	// Run ignores it. See internal/traffic for the full syntax.
	Traffic string
}

// Topology describes a clustered machine for Config.Topology: N co-processor
// instances behind a routed fabric. See the field docs in internal/coproc.
type Topology = coproc.Topology

// telemetryEnabled reports whether the run should build a sampler.
func (c Config) telemetryEnabled() bool {
	return c.Telemetry != nil || c.TimelinePath != "" || c.TelemetryWindow > 0
}

// Validate checks the configuration for shape errors — an unknown
// architecture, a lane budget that is not a multiple of the granule width, a
// malformed fault spec, out-of-range machine tuning — so callers get a
// proper error instead of a build panic deep in the model.
func (c Config) Validate() error {
	switch c.Arch {
	case Private, Temporal, StaticSpatial, Elastic:
	default:
		return fmt.Errorf("occamy: unknown architecture %v", c.Arch)
	}
	if c.LanesPerCore < 0 || c.LanesPerCore%4 != 0 {
		return fmt.Errorf("occamy: LanesPerCore must be a non-negative multiple of 4, got %d", c.LanesPerCore)
	}
	if c.Scale < 0 {
		return fmt.Errorf("occamy: negative Scale %g", c.Scale)
	}
	if c.MonitorPeriod < 0 {
		return fmt.Errorf("occamy: negative MonitorPeriod %d", c.MonitorPeriod)
	}
	if c.Machine != nil {
		if err := c.Machine.Validate(); err != nil {
			return fmt.Errorf("occamy: %w", err)
		}
	}
	clusters := 1
	if t := c.Topology; t != nil {
		if t.Clusters < 1 {
			return fmt.Errorf("occamy: Topology.Clusters must be >= 1, got %d (omit Topology for the flat single-co-processor machine)", t.Clusters)
		}
		if t.CoresPerGroup < 0 {
			return fmt.Errorf("occamy: Topology.CoresPerGroup must be >= 0, got %d (0 derives cores/clusters)", t.CoresPerGroup)
		}
		if t.HopBandwidth < 0 {
			return fmt.Errorf("occamy: Topology.HopBandwidth must be >= 0, got %d (0 means unlimited)", t.HopBandwidth)
		}
		clusters = t.Clusters
	}
	faults, err := parseFaults(c.Faults)
	if err != nil {
		return err
	}
	for _, f := range faults {
		if f.Cluster != fault.AnyCluster && f.Cluster >= clusters {
			return fmt.Errorf("occamy: fault %q targets cluster %d but the topology has %d cluster(s)", f.String(), f.Cluster, clusters)
		}
	}
	if c.Traffic != "" {
		if _, err := traffic.ParseSpec(c.Traffic); err != nil {
			return fmt.Errorf("occamy: %w", err)
		}
	}
	return nil
}

// parseFaults resolves Config.Faults: empty, an inline spec, or "@file.json".
func parseFaults(spec string) ([]fault.Fault, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	if strings.HasPrefix(spec, "@") {
		data, err := os.ReadFile(strings.TrimPrefix(spec, "@"))
		if err != nil {
			return nil, fmt.Errorf("occamy: reading fault spec: %w", err)
		}
		return fault.ParseJSON(data)
	}
	return fault.ParseSpec(spec)
}

// CycleAttribution is one core's top-down cycle accounting: charged cycles
// per taxonomy bucket, with the conservation guarantee that the buckets sum
// to the core's total cycles.
type CycleAttribution = obs.CoreAttribution

// CycleBuckets returns the attribution taxonomy's bucket names, in report
// order (scalar-issue, vec-issue, rename-stall, dispatch-full,
// exebu-busy-wait, lsu-wait, mem-bandwidth, drain-reconfig,
// lane-monitor-overhead, idle).
func CycleBuckets() []string { return obs.BucketNames() }

// MachineTuning overrides hardware parameters relative to the Table 4
// defaults; zero-valued fields keep the default. It unmarshals directly
// from JSON (occamy-sim -machine file.json).
type MachineTuning = arch.MachineTuning

// DefaultConfig returns the Table 4 configuration for the given architecture.
// The forward-progress watchdog is armed by default (it only observes; a
// healthy run never trips it).
func DefaultConfig(a Arch) Config {
	return Config{
		Arch:         a,
		LanesPerCore: 16,
		Seed:         1,
		Scale:        1.0,
		MaxCycles:    200_000_000,
		Verify:       true,
		StallCycles:  2_000_000,
	}
}

// Schedule is a set of workloads co-scheduled one per core.
type Schedule struct {
	inner workload.CoSchedule
}

// Name returns the schedule's identifier.
func (s Schedule) Name() string { return s.inner.Name }

// Cores returns how many cores the schedule occupies.
func (s Schedule) Cores() int { return s.inner.Cores() }

// WorkloadNames returns the per-core workload names.
func (s Schedule) WorkloadNames() []string {
	out := make([]string, 0, s.inner.Cores())
	for _, w := range s.inner.W {
		out = append(out, w.Name)
	}
	return out
}

// registry is the process-wide Table 3 registry (immutable after build).
var registry = workload.NewRegistry()

// Workloads returns the names of the 34 evaluation workloads
// ("spec/WL1".."spec/WL22", "cv/WL1".."cv/WL12").
func Workloads() []string { return registry.WorkloadNames() }

// Kernels returns the names of every Table 3 loop kernel.
func Kernels() []string { return registry.KernelNames() }

// KernelOI returns the Eq. 5 operational-intensity pair of a kernel.
func KernelOI(name string) (issue, mem float64) {
	oi := registry.Kernel(name).OI()
	return oi.Issue, oi.Mem
}

// PairByName builds a two-core schedule: w0 runs on Core0, w1 on Core1
// (the paper places the memory-intensive workload on Core0).
func PairByName(w0, w1 string) Schedule {
	return Schedule{inner: workload.CoSchedule{
		Name: fmt.Sprintf("%s+%s", w0, w1),
		W:    []*workload.Workload{registry.Workload(w0), registry.Workload(w1)},
	}}
}

// WorkloadRef identifies a workload for scheduling: either a Table 3 entry
// (WorkloadByName) or a user-defined one (WorkloadFromJSON).
type WorkloadRef struct {
	inner *workload.Workload
}

// Name returns the workload's identifier.
func (w WorkloadRef) Name() string { return w.inner.Name }

// PhaseOIs returns the Eq. 5 operational-intensity pairs of the workload's
// phases (issue, mem).
func (w WorkloadRef) PhaseOIs() [][2]float64 {
	out := make([][2]float64, 0, len(w.inner.Phases))
	for _, k := range w.inner.Phases {
		oi := k.OI()
		out = append(out, [2]float64{oi.Issue, oi.Mem})
	}
	return out
}

// WorkloadByName looks up a Table 3 workload ("spec/WL8", "cv/WL3").
func WorkloadByName(name string) WorkloadRef {
	return WorkloadRef{inner: registry.Workload(name)}
}

// WorkloadFromJSON parses a custom workload definition — loop kernels
// described by load slots, statements in the compact expression syntax
// ("add(mul(s0, c2.5), s1)"), trip counts and repeats. See
// internal/workload's JSON documentation and examples/customkernel for the
// schema.
func WorkloadFromJSON(data []byte) (WorkloadRef, error) {
	w, err := workload.ParseWorkloadJSON(data)
	if err != nil {
		return WorkloadRef{}, err
	}
	return WorkloadRef{inner: w}, nil
}

// WorkloadToJSON renders a workload back to its JSON definition.
func WorkloadToJSON(w WorkloadRef) ([]byte, error) {
	return workload.MarshalWorkloadJSON(w.inner)
}

// NewSchedule co-schedules the given workloads one per core, in order.
func NewSchedule(name string, ws ...WorkloadRef) Schedule {
	s := workload.CoSchedule{Name: name}
	for _, w := range ws {
		s.W = append(s.W, w.inner)
	}
	return Schedule{inner: s}
}

// ScheduleByNames builds an n-core schedule (used for the §7.6 four-core
// groups).
func ScheduleByNames(names ...string) Schedule {
	s := workload.CoSchedule{Name: fmt.Sprint(names)}
	for _, n := range names {
		s.W = append(s.W, registry.Workload(n))
	}
	return Schedule{inner: s}
}

// Figure10Pairs returns the 25 co-running pairs of the paper's main
// evaluation, in plot order.
func Figure10Pairs() []Schedule {
	var out []Schedule
	for _, p := range workload.Figure10Pairs(registry) {
		out = append(out, Schedule{inner: p})
	}
	return out
}

// MotivatingPair returns the §2 example of Figure 2.
func MotivatingPair() Schedule {
	return Schedule{inner: workload.MotivatingPair(registry)}
}

// CaseStudyPair returns the §7.4 case studies (1-4).
func CaseStudyPair(n int) Schedule {
	return Schedule{inner: workload.CaseStudyPair(registry, n)}
}

// FourCoreGroups returns the §7.6 scalability groups.
func FourCoreGroups() []Schedule {
	var out []Schedule
	for _, g := range workload.FourCoreGroups(registry) {
		out = append(out, Schedule{inner: g})
	}
	return out
}

// Recovery records how the simulated system reacted to one injected fault:
// the cycle it fired and the cycle the architecture finished adapting
// (Done - At is the time-to-repartition for the lane-replanning reactions).
type Recovery = arch.Recovery

// Diagnostic is the structured machine-state dump the watchdog and
// cycle-budget paths attach to a failed run: per-core scalar and
// co-processor pipeline snapshots, the lane table, top-down cycle
// attribution (when profiled) and the fault log. Its String method renders
// it for terminals; it also marshals to JSON.
type Diagnostic = arch.DiagnosticDump

// DiagnosticError is the error Run returns when the engine aborts (forward-
// progress stall or MaxCycles exhaustion): errors.As recovers it, and its
// Dump field holds the Diagnostic. errors.Is/As see through it to the
// underlying sim.StallError / sim.BudgetError.
type DiagnosticError = arch.DiagError

// TelemetryServer serves attached runs' live telemetry over HTTP: GET
// /metrics (OpenMetrics text), /events (one JSON object per line), /stream
// (server-sent events, one update per closed window) and /healthz. Build one
// with NewTelemetryServer, Start it on an address, and pass it to every run
// that should be visible (Config.Telemetry).
type TelemetryServer = telemetry.Server

// NewTelemetryServer returns a telemetry server with no attached runs and no
// listener; call Start("127.0.0.1:9464") to serve.
func NewTelemetryServer() *TelemetryServer { return telemetry.NewServer() }

// TelemetrySampler is a run's windowed telemetry sampler (Report.Telemetry):
// programmatic access to the retained windows, quantiles and event log.
type TelemetrySampler = telemetry.Sampler

// Run simulates sched on cfg.Arch until every core completes.
func Run(cfg Config, sched Schedule) (*Report, error) {
	return RunContext(context.Background(), cfg, sched)
}

// RunContext is Run with cooperative cancellation: when ctx is canceled (or
// its deadline passes) the engine stops at the next cycle-aligned poll point
// and the error chain carries ctx's cause (context.Canceled or
// context.DeadlineExceeded) together with the usual DiagnosticError machine
// dump, so a killed run can still be diagnosed. Cancellation is purely
// cooperative and side-effect-free: a context that never fires leaves results
// bit-identical to Run.
func RunContext(ctx context.Context, cfg Config, sched Schedule) (*Report, error) {
	var sink *obs.Perfetto
	if cfg.PerfettoPath != "" {
		sink = obs.NewPerfetto(0)
	}
	sys, err := buildSystem(cfg, sched, obs.Options{
		Attribution: cfg.Profile || sink != nil,
		Sink:        sink,
	})
	if err != nil {
		return nil, err
	}
	if cfg.Telemetry != nil {
		cfg.Telemetry.Attach(sanitize(sched.inner.Name)+"-"+cfg.Arch.String(), sys.Tele)
	}
	if ctx != nil && ctx.Done() != nil {
		sys.SetInterrupt(ctx.Done())
	}
	maxCycles := cfg.MaxCycles
	if maxCycles == 0 {
		maxCycles = 200_000_000
	}
	res, err := sys.Run(maxCycles)
	sys.Tele.Flush(sys.Engine.Cycle())
	if err != nil {
		return nil, err
	}
	if cfg.TimelinePath != "" {
		if err := writeTimeline(cfg.TimelinePath, sys.Tele); err != nil {
			return nil, fmt.Errorf("occamy: writing telemetry timeline: %w", err)
		}
	}
	if cfg.Verify {
		if err := sys.CheckResults(2e-3); err != nil {
			return nil, fmt.Errorf("occamy: functional verification failed: %w", err)
		}
	}
	if cfg.TraceDir != "" {
		if err := writeTrace(cfg.TraceDir, sys, res); err != nil {
			return nil, fmt.Errorf("occamy: writing trace: %w", err)
		}
	}
	if sink != nil {
		f, err := os.Create(cfg.PerfettoPath)
		if err != nil {
			return nil, fmt.Errorf("occamy: writing perfetto trace: %w", err)
		}
		_, werr := sink.Write(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return nil, fmt.Errorf("occamy: writing perfetto trace: %w", werr)
		}
	}
	return newReport(sys, res), nil
}

// writeTimeline dumps the sampler's retained history as a Perfetto trace.
func writeTimeline(path string, tele *telemetry.Sampler) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	_, werr := tele.WriteTimeline(f)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}

// writeTrace exports the run's series and events into dir.
func writeTrace(dir string, sys *arch.System, res *arch.Result) error {
	run := trace.Capture(sys, res)
	slug := sanitize(res.Sched) + "-" + res.Arch.String()
	write := func(suffix string, f func(io.Writer) error) error {
		file, err := os.Create(filepath.Join(dir, slug+suffix))
		if err != nil {
			return err
		}
		defer file.Close()
		return f(file)
	}
	if err := write(".json", run.WriteJSON); err != nil {
		return err
	}
	if err := write("-timeline.csv", run.WriteTimelineCSV); err != nil {
		return err
	}
	return write("-events.csv", run.WriteEventsCSV)
}

// sanitize turns a schedule name into a safe file stem.
func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			out = append(out, r)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}

func buildSystem(cfg Config, sched Schedule, o obs.Options) (*arch.System, error) {
	faults, err := parseFaults(cfg.Faults)
	if err != nil {
		return nil, err
	}
	s := sched.inner
	if cfg.Scale > 0 && cfg.Scale != 1.0 {
		s = s.Scaled(cfg.Scale)
	}
	lanesPerCore := cfg.LanesPerCore
	if lanesPerCore <= 0 {
		lanesPerCore = 16
	}
	var teleCfg *telemetry.Config
	if cfg.telemetryEnabled() {
		teleCfg = &telemetry.Config{Window: cfg.TelemetryWindow}
	}
	return arch.Build(cfg.Arch, s, arch.Options{
		ExeBUs:        lanesPerCore / 4 * s.Cores(),
		MonitorPeriod: cfg.MonitorPeriod,
		Seed:          cfg.Seed,
		Machine:       cfg.Machine,
		Obs:           o,
		LegacyTick:    cfg.LegacyTick,
		Faults:        faults,
		StallCycles:   cfg.StallCycles,
		Telemetry:     teleCfg,
		Topology:      cfg.Topology,
	})
}

// Roofline exposes the §5.1 vector-length-aware model for analysis: the
// attainable performance AP_vl (Eq. 4) in GFLOP/s for a phase with the given
// operational intensities at vl granules (4*vl lanes).
func Roofline(vl int, oiIssue, oiMem float64) float64 {
	m := roofline.Default()
	return m.Attainable(vl, isa.OIPair{Issue: oiIssue, Mem: oiMem})
}

// LanePlan runs the §5.2 greedy partitioner over a set of co-running phase
// intensities (pairs of oi_issue, oi_mem; a zero pair marks an inactive
// core) and a total granule budget, returning granules per workload.
func LanePlan(oiPairs [][2]float64, totalGranules int) []int {
	in := make([]isa.OIPair, len(oiPairs))
	for i, p := range oiPairs {
		in[i] = isa.OIPair{Issue: p[0], Mem: p[1]}
	}
	return lanemgr.Plan(roofline.Default(), in, totalGranules)
}
