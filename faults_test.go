package occamy

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig(Elastic)
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	for name, mutate := range map[string]func(*Config){
		"bad arch":        func(c *Config) { c.Arch = Arch(99) },
		"odd lanes":       func(c *Config) { c.LanesPerCore = 10 },
		"negative scale":  func(c *Config) { c.Scale = -1 },
		"negative period": func(c *Config) { c.MonitorPeriod = -2 },
		"bad fault spec":  func(c *Config) { c.Faults = "exebu:@" },
		"missing file":    func(c *Config) { c.Faults = "@/nonexistent/faults.json" },
	} {
		cfg := good
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", name, cfg)
		}
	}
}

func TestRunWithFaultSpec(t *testing.T) {
	cfg := quickCfg(Elastic)
	cfg.Faults = "exebu:1@1000"
	cfg.StallCycles = 300_000
	rep, err := Run(cfg, MotivatingPair())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Recoveries) != 1 {
		t.Fatalf("recoveries = %+v, want one", rep.Recoveries)
	}
	if rep.Elems == 0 {
		t.Error("report carries no element count")
	}
	if s := rep.Summary(); !strings.Contains(s, "fault exebu@1000") {
		t.Errorf("summary does not mention the fault:\n%s", s)
	}
}

func TestRunWithFaultJSONFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "faults.json")
	spec := `[{"kind": "exebu", "count": 1, "at": 1000, "for": 4000}]`
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := quickCfg(Elastic)
	cfg.Faults = "@" + path
	cfg.StallCycles = 300_000
	rep, err := Run(cfg, MotivatingPair())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Recoveries) != 1 {
		t.Fatalf("recoveries = %+v, want one", rep.Recoveries)
	}
}

// TestRunDiagnosticError: killing every ExeBU wedges any architecture; the
// watchdog must surface a DiagnosticError whose dump names the stall.
func TestRunDiagnosticError(t *testing.T) {
	cfg := quickCfg(Private)
	cfg.Faults = "exebu:8@1000"
	cfg.StallCycles = 100_000
	_, err := Run(cfg, MotivatingPair())
	if err == nil {
		t.Fatal("expected a watchdog abort")
	}
	var derr *DiagnosticError
	if !errors.As(err, &derr) {
		t.Fatalf("error is not a DiagnosticError: %v", err)
	}
	if derr.Dump == nil || !strings.Contains(derr.Dump.String(), "diagnostic dump") {
		t.Fatalf("missing or malformed dump: %+v", derr.Dump)
	}
}
