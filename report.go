package occamy

import (
	"fmt"
	"sort"
	"strings"

	"occamy/internal/arch"
	"occamy/internal/metrics"
	"occamy/internal/obs"
)

// CoreReport carries one core's measurements from a run (the quantities of
// Figure 2(f) and Figure 14(c)).
type CoreReport struct {
	Workload string
	// Cycles is the core's completion time.
	Cycles uint64
	// IssueRate is SIMD compute instructions issued per cycle over the
	// whole run (the paper's "SIMD issue rate").
	IssueRate float64
	// PhaseIssueRates and PhaseCycles break the run down per compiler
	// phase.
	PhaseIssueRates []float64
	PhaseCycles     []uint64
	// RenameStallFrac is the fraction of cycles blocked in the renamer
	// waiting for free registers (Figure 13).
	RenameStallFrac float64
	// OverheadMonitorFrac and OverheadReconfigFrac are the Figure 15
	// elastic-sharing overheads, as fractions of execution time.
	OverheadMonitorFrac  float64
	OverheadReconfigFrac float64
	// Attribution is the top-down cycle accounting for this core: every
	// cycle charged to exactly one bucket, buckets summing to Cycles. Nil
	// unless the run was profiled (Config.Profile / PerfettoPath).
	Attribution *CycleAttribution
}

// Report is the result of one simulation run.
type Report struct {
	Arch     Arch
	Schedule string
	// Cycles is the makespan.
	Cycles uint64
	// Utilization is the paper's SIMD_util (§2) across the whole run.
	Utilization float64
	Cores       []CoreReport
	// Repartitions counts lane-manager plan computations; Reconfigures
	// counts successful <VL> changes (elastic only).
	Repartitions uint64
	Reconfigures uint64
	// StaticVLs echoes the static-spatial partition in granules, when the
	// architecture uses one.
	StaticVLs []int
	// LaneTimelines holds, per core, the average busy lanes per
	// 1000-cycle bucket — the curves of Figure 2(b-e) and Figure 14(b).
	LaneTimelines [][]float64
	// Elems counts vector elements processed across all cores (a work
	// proxy sampled at strip boundaries; the degradation experiment's
	// throughput numerator).
	Elems uint64
	// Recoveries is the fault-reaction log of an injected run (nil when no
	// faults were configured).
	Recoveries []Recovery
	// LinkDrops counts CPU->coproc transmissions refused by injected
	// dispatch-link faults.
	LinkDrops uint64
	// Stats is the full counter registry at end of run (nil unless
	// profiled). Names follow the unit.event convention, e.g.
	// "coproc.rename.stalls", "dram.bytes", "cpu0.pool_full_stall".
	Stats map[string]uint64
	// Histograms holds the rendered latency histograms collected during a
	// profiled run (e.g. dram.latency, coproc.drain.cycles).
	Histograms []string
	// Telemetry is the run's windowed sampler (nil unless Config enabled
	// telemetry): retained time-series windows, latency quantiles and the
	// structured event log, for programmatic consumers.
	Telemetry *TelemetrySampler
}

func newReport(sys *arch.System, res *arch.Result) *Report {
	r := &Report{
		Arch:         res.Arch,
		Schedule:     res.Sched,
		Cycles:       res.Cycles,
		Utilization:  res.Utilization,
		Repartitions: res.Repartitions,
		Reconfigures: res.Reconfigures,
		StaticVLs:    res.StaticVLs,
		Elems:        res.Elems,
		Recoveries:   res.Recoveries,
		LinkDrops:    res.LinkDrops,
	}
	for c, cr := range res.Cores {
		r.Cores = append(r.Cores, CoreReport{
			Workload:             cr.Workload,
			Cycles:               cr.Cycles,
			IssueRate:            cr.IssueRate,
			PhaseIssueRates:      cr.PhaseIssueRates,
			PhaseCycles:          cr.PhaseCycles,
			RenameStallFrac:      cr.RenameStallFrac,
			OverheadMonitorFrac:  cr.OverheadMonitorFrac,
			OverheadReconfigFrac: cr.OverheadReconfigFrac,
			Attribution:          cr.Attribution,
		})
		r.LaneTimelines = append(r.LaneTimelines, sys.Cplx.BusyTimeline(c).Points())
	}
	if sys.Probe != nil {
		r.Stats = sys.Stats.Snapshot()
		for _, h := range sys.Probe.Histograms() {
			r.Histograms = append(r.Histograms, h.String())
		}
	}
	r.Telemetry = sys.Tele
	return r
}

// TTRStats summarizes time-to-repartition over the run's completed
// recoveries: minimum, lower-median p50 and maximum in cycles, plus the count
// n of completed recoveries. Pending recoveries (the run ended first) are
// excluded; n == 0 means nothing completed.
func (r *Report) TTRStats() (min, p50, max uint64, n int) {
	ttrs := make([]uint64, 0, len(r.Recoveries))
	for _, rec := range r.Recoveries {
		if rec.Pending {
			continue
		}
		ttrs = append(ttrs, rec.TimeToRepartition())
	}
	if len(ttrs) == 0 {
		return 0, 0, 0, 0
	}
	sort.Slice(ttrs, func(i, j int) bool { return ttrs[i] < ttrs[j] })
	n = len(ttrs)
	return ttrs[0], ttrs[(n-1)/2], ttrs[n-1], n
}

// TopDown renders the per-core cycle-attribution table: one row per bucket
// of the taxonomy, one column per core, cycles and percentage of that
// core's execution time. Empty when the run was not profiled.
func (r *Report) TopDown() string {
	profiled := false
	for _, cr := range r.Cores {
		if cr.Attribution != nil {
			profiled = true
		}
	}
	if !profiled {
		return ""
	}
	t := metrics.Table{Header: []string{"bucket"}}
	for c, cr := range r.Cores {
		t.Header = append(t.Header, fmt.Sprintf("core%d [%s]", c, cr.Workload))
	}
	for b := 0; b < obs.NumBuckets; b++ {
		row := []string{obs.Bucket(b).String()}
		for _, cr := range r.Cores {
			if cr.Attribution == nil {
				row = append(row, "-")
				continue
			}
			row = append(row, fmt.Sprintf("%d (%5.1f%%)",
				cr.Attribution.Get(obs.Bucket(b)), 100*cr.Attribution.Frac(obs.Bucket(b))))
		}
		t.Add(row...)
	}
	total := []string{"total"}
	for _, cr := range r.Cores {
		if cr.Attribution == nil {
			total = append(total, "-")
			continue
		}
		total = append(total, fmt.Sprintf("%d (100.0%%)", cr.Attribution.Total))
	}
	t.Add(total...)
	return t.String()
}

// Summary renders a one-run overview.
func (r *Report) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s on %s: %d cycles, SIMD utilization %.1f%%\n",
		r.Schedule, r.Arch, r.Cycles, 100*r.Utilization)
	for c, cr := range r.Cores {
		fmt.Fprintf(&b, "  core%d %-12s %8d cycles  issue %.2f/cy  rename-stall %.1f%%\n",
			c, cr.Workload, cr.Cycles, cr.IssueRate, 100*cr.RenameStallFrac)
	}
	if r.Arch == Elastic {
		fmt.Fprintf(&b, "  lane manager: %d repartitions, %d reconfigurations\n",
			r.Repartitions, r.Reconfigures)
	}
	if len(r.StaticVLs) > 0 {
		fmt.Fprintf(&b, "  static partition (granules): %v\n", r.StaticVLs)
	}
	for _, rec := range r.Recoveries {
		if rec.Pending {
			fmt.Fprintf(&b, "  fault %s: applied at %d, recovery pending at end of run\n", rec.Fault, rec.At)
		} else {
			fmt.Fprintf(&b, "  fault %s: applied at %d, recovered in %d cycles\n",
				rec.Fault, rec.At, rec.TimeToRepartition())
		}
	}
	if min, p50, max, n := r.TTRStats(); n > 0 {
		fmt.Fprintf(&b, "  recovery TTR (cycles): min %d  p50 %d  max %d  (%d completed)\n",
			min, p50, max, n)
	}
	if r.LinkDrops > 0 {
		fmt.Fprintf(&b, "  dropped transmissions: %d\n", r.LinkDrops)
	}
	return b.String()
}

// AsciiTimeline renders core c's busy-lane curve as a compact sparkline-ish
// strip (one character per bucket, height 0-8), handy for terminal plots of
// Figure 2.
func (r *Report) AsciiTimeline(c int, maxLanes float64) string {
	if c >= len(r.LaneTimelines) {
		return ""
	}
	levels := []rune(" .:-=+*#%")
	var b strings.Builder
	for _, v := range r.LaneTimelines[c] {
		idx := int(v / maxLanes * float64(len(levels)-1))
		if idx < 0 {
			idx = 0
		}
		if idx >= len(levels) {
			idx = len(levels) - 1
		}
		b.WriteRune(levels[idx])
	}
	return b.String()
}
