package occamy

import (
	"context"
	"fmt"

	"occamy/internal/arch"
	"occamy/internal/telemetry"
	"occamy/internal/traffic"
)

// TrafficReport is the per-tenant SLO outcome of an open-loop traffic run:
// arrival/completion accounting, issue→completion latency percentiles,
// admission-wait percentiles and SLO-attainment curves, per tenant and
// aggregated. Its Summary method renders the table.
type TrafficReport = traffic.Report

// TenantSLO is one tenant's slice of a TrafficReport.
type TenantSLO = traffic.TenantSLO

// RunTraffic simulates the open-loop arrival process described by
// cfg.Traffic on cfg.Arch: tasks drawn from the Table 3 kernel registry
// arrive under a seeded Poisson/bursty/diurnal process across multiple
// tenants (with optional tenant churn), are admitted by the preemptive
// co-processor scheduler, and the run stops at the spec's horizon (or, with
// ",drain", when every task has completed or been canceled).
//
// Unlike Run there is no Schedule: the spec's tenants=/cores=/mix= fields
// define the offered work. Faults, telemetry, topology, machine tuning and
// the legacy-tick switch compose as for Run. With cfg.Verify every completed
// task's results are checked against the host reference. The report's
// conservation invariants are always checked; a violation is an engine bug
// and returns an error.
func RunTraffic(cfg Config) (*TrafficReport, error) {
	return RunTrafficContext(context.Background(), cfg)
}

// RunTrafficContext is RunTraffic with cooperative cancellation, mirroring
// RunContext: a canceled ctx kills the run at the engine's next poll point
// with a DiagnosticError wrapping sim.CanceledError; a context that never
// fires leaves the report bit-identical to RunTraffic.
func RunTrafficContext(ctx context.Context, cfg Config) (*TrafficReport, error) {
	if cfg.Traffic == "" {
		return nil, fmt.Errorf("occamy: RunTraffic requires Config.Traffic (an arrival-process spec like \"poisson:load=2\")")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	spec, err := traffic.ParseSpec(cfg.Traffic)
	if err != nil {
		return nil, fmt.Errorf("occamy: %w", err)
	}
	faults, err := parseFaults(cfg.Faults)
	if err != nil {
		return nil, err
	}
	spec.ApplyDefaults()
	lanesPerCore := cfg.LanesPerCore
	if lanesPerCore <= 0 {
		lanesPerCore = 16
	}
	var teleCfg *telemetry.Config
	if cfg.telemetryEnabled() {
		teleCfg = &telemetry.Config{Window: cfg.TelemetryWindow}
	}
	sc, err := traffic.Build(cfg.Arch, spec, arch.Options{
		ExeBUs:        lanesPerCore / 4 * spec.Cores,
		MonitorPeriod: cfg.MonitorPeriod,
		Seed:          cfg.Seed,
		Machine:       cfg.Machine,
		LegacyTick:    cfg.LegacyTick,
		Faults:        faults,
		StallCycles:   cfg.StallCycles,
		Telemetry:     teleCfg,
		Topology:      cfg.Topology,
	})
	if err != nil {
		return nil, err
	}
	if cfg.Telemetry != nil {
		cfg.Telemetry.Attach("traffic-"+cfg.Arch.String(), sc.Sys.Tele)
	}
	if ctx != nil && ctx.Done() != nil {
		sc.Sys.SetInterrupt(ctx.Done())
	}
	budget := cfg.MaxCycles
	if budget == 0 {
		budget = sc.DefaultBudget()
	}
	runErr := sc.Run(budget)
	sc.Sys.Tele.Flush(sc.Sys.Engine.Cycle())
	if runErr != nil {
		return nil, runErr
	}
	if cfg.TimelinePath != "" {
		if err := writeTimeline(cfg.TimelinePath, sc.Sys.Tele); err != nil {
			return nil, fmt.Errorf("occamy: writing telemetry timeline: %w", err)
		}
	}
	var rep *TrafficReport
	if cfg.Verify {
		rep, err = sc.ReportVerified(2e-3)
		if err != nil {
			return nil, fmt.Errorf("occamy: functional verification failed: %w", err)
		}
	} else {
		rep = sc.BuildReport()
	}
	if err := rep.Conservation(); err != nil {
		return nil, err
	}
	return rep, nil
}
